type t = {
  pattern_period : int;
  transient_periods : int;
  increment : float;
  lambda : float;
}

let detect ?max_periods g =
  if Signal_graph.repetitive_count g = 0 then
    raise (Cycle_time.Not_analyzable "the graph has no repetitive events");
  let b = List.length (Cut_set.border g) in
  let max_periods = match max_periods with Some p -> max 2 p | None -> (4 * b) + 8 in
  let u = Unfolding.make g ~periods:max_periods in
  let sim = Timing_sim.simulate u in
  let events = Signal_graph.repetitive_events g in
  let times = List.map (fun e -> (e, Timing_sim.occurrence_times u sim ~event:e)) events in
  let tol = 1e-9 in
  (* does pattern period k hold from period i0 on, with one shared
     increment across all events? *)
  let pattern_holds k i0 =
    let increment = ref None in
    let event_ok (_, ts) =
      let ok = ref true in
      for i = i0 to Array.length ts - 1 - k do
        let d = ts.(i + k) -. ts.(i) in
        match !increment with
        | None -> increment := Some d
        | Some d0 -> if abs_float (d -. d0) > tol *. (1. +. abs_float d0) then ok := false
      done;
      !ok
    in
    if List.for_all event_ok times then !increment else None
  in
  let rec search k =
    if k > max_periods / 2 then None
    else begin
      (* smallest transient for this k *)
      let rec try_transient i0 =
        if i0 > max_periods - (2 * k) then None
        else
          match pattern_holds k i0 with
          | Some increment ->
            Some
              {
                pattern_period = k;
                transient_periods = i0;
                increment;
                lambda = increment /. float_of_int k;
              }
          | None -> try_transient (i0 + 1)
      in
      match try_transient 0 with Some r -> Some r | None -> search (k + 1)
    end
  in
  search 1
