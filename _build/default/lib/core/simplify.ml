(* rebuild without one arc; None if the result no longer validates *)
let without_arc g arc =
  let b = Signal_graph.builder () in
  Array.iteri
    (fun i ev -> Signal_graph.add_event b ev (Signal_graph.class_of g i))
    (Signal_graph.events_of g);
  Array.iteri
    (fun i (a : Signal_graph.arc) ->
      if i <> arc then
        Signal_graph.add_arc b ~marked:a.marked ~disengageable:a.disengageable
          ~delay:a.delay
          (Signal_graph.event g a.arc_src)
          (Signal_graph.event g a.arc_dst))
    (Signal_graph.arcs g);
  match Signal_graph.build b with Ok g' -> Some g' | Error _ -> None

let is_redundant ?periods g arc =
  match without_arc g arc with
  | None -> false
  | Some g' -> Equivalence.timing_equal ?periods g g'

let redundant_arcs ?periods g =
  List.filter (is_redundant ?periods g) (List.init (Signal_graph.arc_count g) Fun.id)

let prune ?periods g =
  (* remove one redundant arc at a time, tracking original ids *)
  let rec loop g original_ids removed =
    let rec find i =
      if i >= Signal_graph.arc_count g then None
      else if is_redundant ?periods g i then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> (g, List.rev removed)
    | Some i -> (
      match without_arc g i with
      | None -> (g, List.rev removed)
      | Some g' ->
        let original = List.nth original_ids i in
        let original_ids' = List.filteri (fun j _ -> j <> i) original_ids in
        loop g' original_ids' (original :: removed))
  in
  loop g (List.init (Signal_graph.arc_count g) Fun.id) []
