(** Timing simulation of an unfolded Timed Signal Graph (Section IV).

    The timing simulation assigns to every instance [f] of the
    unfolding its occurrence time

    {v t(f) = 0                          if f is in I_u
t(f) = max { t(e) + d | e -d-> f }  otherwise v}

    i.e. the longest-path distance from the initial instances
    (Proposition 1).  The {e event-initiated} simulation [t_g] starts
    the clock at a chosen instance [g]: everything concurrent with or
    preceding [g] is assumed past (occurrence time 0, out-arcs
    neglected), so [t_g(f)] is the longest-path distance from [g] for
    instances reachable from [g] and [0] elsewhere. *)

type result = {
  time : float array;  (** occurrence time per instance id *)
  pred_instance : int array;
      (** argmax predecessor instance on a longest path, or [-1] *)
  pred_arc : int array;
      (** the Signal-Graph arc id realising the argmax, or [-1] *)
  reached : bool array;
      (** instances whose time is constrained (for an event-initiated
          simulation: reachable from the initiating instance; for the
          plain simulation: everything) *)
}

val simulate : Unfolding.t -> result
(** The timing simulation [t] of the whole unfolding.  The topological
    order and compact adjacency are cached inside the unfolding, so
    repeated simulations of the same unfolding (as the cycle-time
    algorithm performs, once per border event) pay the set-up cost
    once. *)

val simulate_initiated : Unfolding.t -> at:int -> result
(** [simulate_initiated u ~at:g] is the [g]-initiated timing
    simulation.  [time.(f) = 0.] and [reached.(f) = false] for every
    [f] not reachable from [g]. *)

val occurrence_times : Unfolding.t -> result -> event:int -> float array
(** [occurrence_times u r ~event] is the array of [t(e_i)] for
    [i = 0 .. periods-1] (length 1 for a non-repetitive event). *)

val average_occurrence_distance : Unfolding.t -> result -> event:int -> period:int -> float
(** [Delta(e_i) = t(e_i) / (i + 1)] — the average occurrence distance
    after [i] periods of a plain simulation (Section IV.C). *)

val initiated_average_distance :
  Unfolding.t -> result -> event:int -> period:int -> float
(** [Delta_{e_0}(e_i) = t_{e_0}(e_i) / i] for an [e_0]-initiated
    simulation.  @raise Invalid_argument if [period = 0]. *)

val critical_path : Unfolding.t -> result -> instance:int -> (int * int option) list
(** The longest path leading to [instance], root-first, as
    [(instance, arc entering it)] pairs; the root carries [None].
    This is the "backtracking" step of Section VI.B. *)
