type t = {
  sg : Signal_graph.t;
  times : (int * float array) list; (* per repetitive event *)
  steady : Steady_state.t;
}

let analyze ?max_periods g =
  match Steady_state.detect ?max_periods g with
  | None -> None
  | Some steady ->
    let b = List.length (Cut_set.border g) in
    let periods =
      match max_periods with Some p -> max 2 p | None -> (4 * b) + 8
    in
    let u = Unfolding.make g ~periods in
    let sim = Timing_sim.simulate u in
    let times =
      List.map
        (fun e -> (e, Timing_sim.occurrence_times u sim ~event:e))
        (Signal_graph.repetitive_events g)
    in
    Some { sg = g; times; steady }

let lambda t = t.steady.Steady_state.lambda
let pattern_period t = t.steady.Steady_state.pattern_period
let transient_periods t = t.steady.Steady_state.transient_periods

let times_of t e =
  match List.assoc_opt e t.times with
  | Some ts -> ts
  | None ->
    invalid_arg
      (Printf.sprintf "Separation: event %s is not repetitive"
         (Event.to_string (Signal_graph.event t.sg e)))

let steady_skew t ~from_ ~to_ =
  let tf = times_of t from_ and tt = times_of t to_ in
  let k = pattern_period t and i0 = transient_periods t in
  List.init k (fun j -> tt.(i0 + j) -. tf.(i0 + j))

let extremes t ~from_ ~to_ =
  let tf = times_of t from_ and tt = times_of t to_ in
  let n = min (Array.length tf) (Array.length tt) in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = 0 to n - 1 do
    let d = tt.(i) -. tf.(i) in
    if d < !lo then lo := d;
    if d > !hi then hi := d
  done;
  (!lo, !hi)

let phase t e =
  let ts = times_of t e in
  let k = pattern_period t and i0 = transient_periods t in
  (* the reference is the earliest occurrence of any event within the
     pattern window *)
  let reference =
    List.fold_left
      (fun acc (_, ts') ->
        let m = ref acc in
        for j = 0 to k - 1 do
          if ts'.(i0 + j) < !m then m := ts'.(i0 + j)
        done;
        !m)
      infinity t.times
  in
  List.init k (fun j -> ts.(i0 + j) -. reference)
