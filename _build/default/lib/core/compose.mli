(** Building Timed Signal Graphs from components.

    Real systems are assembled from blocks — handshake cells, pipeline
    stages, controllers.  This module provides the two primitives that
    assembly needs:

    - {!union} merges component graphs, identifying events by name
      (signals shared between components synchronise — the Signal
      Graph analogue of parallel composition with rendezvous);
    - {!link} adds the glue arcs between already-present events.

    Combined with {!Transform.relabel_signals} for instantiating a
    template block several times, these compose arbitrary structures;
    the test suite rebuilds the stack-controller ring of
    {!Tsg_circuit.Circuit_library} out of individual cells and checks
    the result is identical to the monolithic generator.

    Validation runs on the final graph only: partial compositions may
    freely be non-live or disconnected while under construction, so
    {!union} and {!link} operate on {e pre-graphs} and {!seal}
    produces the validated {!Signal_graph.t}. *)

type pre
(** An unvalidated graph under construction. *)

val of_signal_graph : Signal_graph.t -> pre
(** A component as a pre-graph. *)

val block :
  events:(Event.t * Signal_graph.event_class) list ->
  arcs:(Event.t * Event.t * float * bool) list ->
  pre
(** A pre-graph literal (same shape as {!Signal_graph.of_arcs}, but
    without validation). *)

val union : pre list -> pre
(** Merges components.  Events with the same name are identified and
    must carry the same class; arcs are concatenated in component
    order.
    @raise Invalid_argument when a shared event's class differs
    between components. *)

val link : pre -> arcs:(Event.t * Event.t * float * bool) list -> pre
(** Adds glue arcs; both endpoints must already be present.
    @raise Invalid_argument otherwise. *)

val relabel : pre -> f:(string -> string) -> pre
(** Renames signals (e.g. to instantiate a template block under a
    fresh prefix).  Must be injective on the block's signals. *)

val seal : pre -> (Signal_graph.t, Signal_graph.error list) result
(** Validates and freezes the composition. *)

val seal_exn : pre -> Signal_graph.t
(** @raise Invalid_argument listing the validation errors. *)
