type t = { pieces : (float * float * float) list (* x_from, intercept, slope *) }

(* longest paths over the unfolding from a chosen instance, with every
   instance of one Signal-Graph arc excluded (its delay is the
   parameter and must not be baked into the constants) *)
let initiated_without u ~at ~skip_arc =
  let n = Unfolding.instance_count u in
  let time = Array.make n neg_infinity in
  time.(at) <- 0.;
  let topo = Unfolding.topological_order u in
  let starts, srcs, arc_ids = Unfolding.in_adjacency u in
  let delays = Unfolding.delays u in
  for k = 0 to Array.length topo - 1 do
    let v = topo.(k) in
    if v <> at then
      for j = starts.(v) to starts.(v + 1) - 1 do
        let src = srcs.(j) in
        let aid = arc_ids.(j) in
        if aid <> skip_arc && time.(src) > neg_infinity then begin
          let d = time.(src) +. delays.(aid) in
          if d > time.(v) then time.(v) <- d
        end
      done
  done;
  time

(* best cycle ratio among cycles avoiding one arc: the paper's own
   border-event argument applies to the arc-excluded unfolding (every
   cycle avoiding the arc still crosses a border event and carries at
   most b tokens), so b initiated simulations give the exact value;
   neg_infinity when no cycle avoids the arc *)
let lambda_rest g u ~skip_arc =
  let border = Cut_set.border g in
  let b = List.length border in
  List.fold_left
    (fun acc g0 ->
      let time =
        initiated_without u ~at:(Unfolding.instance u ~event:g0 ~period:0) ~skip_arc
      in
      let best = ref acc in
      for k = 1 to b do
        match Unfolding.instance_opt u ~event:g0 ~period:k with
        | Some inst when time.(inst) > neg_infinity ->
          let ratio = time.(inst) /. float_of_int k in
          if ratio > !best then best := ratio
        | Some _ | None -> ()
      done;
      !best)
    neg_infinity border

(* upper envelope of lines (intercept, slope) over x >= 0 *)
let envelope lines =
  (* keep the best intercept per slope, sort by slope ascending *)
  let by_slope = Hashtbl.create 16 in
  List.iter
    (fun (c, s) ->
      match Hashtbl.find_opt by_slope s with
      | Some c' when c' >= c -> ()
      | _ -> Hashtbl.replace by_slope s c)
    lines;
  let sorted =
    Hashtbl.fold (fun s c acc -> (c, s) :: acc) by_slope []
    |> List.sort (fun (_, s1) (_, s2) -> Float.compare s1 s2)
  in
  (* convex hull scan: hull holds (line, x_start) with x_start the
     point from which the line is the maximum, most recent first *)
  let intersection (c1, s1) (c2, s2) = (c1 -. c2) /. (s2 -. s1) in
  let hull =
    List.fold_left
      (fun hull line ->
        let rec place = function
          | [] -> [ (line, neg_infinity) ]
          | ((top, x_top) :: rest) as hull ->
            let x = intersection top line in
            if x <= x_top then place rest else (line, x) :: hull
        in
        place hull)
      [] sorted
  in
  (* clip to x >= 0 and orient left-to-right *)
  let ordered = List.rev hull in
  let rec clip = function
    | [] -> []
    | [ ((c, s), x_from) ] -> [ (Float.max 0. x_from, c, s) ]
    | ((c, s), x_from) :: ((_, x_next) :: _ as rest) ->
      if x_next <= 0. then clip rest else (Float.max 0. x_from, c, s) :: clip rest
  in
  { pieces = clip ordered }

let analyze g ~arc =
  if arc < 0 || arc >= Signal_graph.arc_count g then
    invalid_arg "Parametric.analyze: arc id out of range";
  if Signal_graph.repetitive_count g = 0 then
    raise (Cycle_time.Not_analyzable "the graph has no repetitive events");
  let a = Signal_graph.arc g arc in
  if
    not
      (Signal_graph.is_repetitive g a.Signal_graph.arc_src
      && Signal_graph.is_repetitive g a.Signal_graph.arc_dst)
  then invalid_arg "Parametric.analyze: the arc is outside the repetitive part";
  let b = List.length (Cut_set.border g) in
  let m_a = if a.Signal_graph.marked then 1 else 0 in
  let u = Unfolding.make g ~periods:(b + 1) in
  let time =
    initiated_without u
      ~at:(Unfolding.instance u ~event:a.Signal_graph.arc_dst ~period:0)
      ~skip_arc:arc
  in
  let through_lines = ref [] in
  for k = 0 to b - m_a do
    let eps = k + m_a in
    if eps >= 1 then begin
      match Unfolding.instance_opt u ~event:a.Signal_graph.arc_src ~period:k with
      | Some inst when time.(inst) > neg_infinity ->
        let eps_f = float_of_int eps in
        through_lines := (time.(inst) /. eps_f, 1. /. eps_f) :: !through_lines
      | Some _ | None -> ()
    end
  done;
  let rest = lambda_rest g u ~skip_arc:arc in
  let lines =
    (if rest > neg_infinity then [ (rest, 0.) ] else []) @ !through_lines
  in
  if lines = [] then
    raise (Cycle_time.Not_analyzable "no cycle constrains the parametric arc");
  envelope lines

let eval t x =
  if x < 0. then invalid_arg "Parametric.eval: negative delay";
  let rec find = function
    | [] -> assert false
    | [ (_, c, s) ] -> c +. (s *. x)
    | (_, c, s) :: ((x_next, _, _) :: _ as rest) ->
      if x < x_next then c +. (s *. x) else find rest
  in
  find t.pieces

let breakpoints t =
  match t.pieces with [] | [ _ ] -> [] | _ :: rest -> List.map (fun (x, _, _) -> x) rest

let slope_after t x =
  if x < 0. then invalid_arg "Parametric.slope_after: negative delay";
  let rec find = function
    | [] -> assert false
    | [ (_, _, s) ] -> s
    | (_, _, s) :: ((x_next, _, _) :: _ as rest) -> if x < x_next then s else find rest
  in
  find t.pieces

let pieces t = t.pieces
