(** Cycle time as a function of one arc's delay — the {e parametric}
    view the paper connects to Young, Tarjan and Orlin's parametric
    shortest paths [13].

    Fix an arc [a] and let its delay vary as [x >= 0] while every
    other delay stays nominal.  Each simple cycle [C] contributes the
    affine function [(const_C + uses_C * x) / eps_C], so

    {v lambda(x) = max(lambda_rest, max_k (L_k + x) / (k + m_a)) v}

    is the upper envelope of finitely many lines: piecewise linear,
    convex, and non-decreasing.  [L_k] is the longest path from the
    arc's target back to its source crossing [k] tokens (one
    event-initiated simulation of the unfolding, with the arc itself
    excluded), and [lambda_rest] is the best ratio among cycles
    avoiding the arc.

    Consequences checked by the test suite: evaluating at the nominal
    delay recovers {!Cycle_time.cycle_time}; the first breakpoint
    after the nominal delay sits exactly at [nominal + slack]
    ({!Slack}); the slope at large [x] is [1 / eps] of the tightest
    cycle through the arc. *)

type t
(** The piecewise-linear function [lambda(x)] for one arc. *)

val analyze : Signal_graph.t -> arc:int -> t
(** Builds the function.  Both the lines through the arc and
    [lambda_rest] come from longest-path sweeps of the arc-excluded
    unfolding, so with integer delays every piece is exact.
    @raise Invalid_argument on an arc id out of range or an arc
    outside the repetitive part.
    @raise Cycle_time.Not_analyzable on graphs without cycles. *)

val eval : t -> float -> float
(** [lambda(x)].  @raise Invalid_argument for [x < 0]. *)

val breakpoints : t -> float list
(** The [x] values where the active line changes, increasing.  Empty
    when a single line dominates everywhere. *)

val slope_after : t -> float -> float
(** The right-derivative of [lambda] at [x]: [0] while the arc is not
    critical, [1/eps] of the binding cycle once it is. *)

val pieces : t -> (float * float * float) list
(** The envelope as [(x_from, intercept, slope)] triples: on
    [x_from <= x < x_next], [lambda(x) = intercept + slope * x]. *)
