(** Event-rule systems (Burns [2]) — the paper states its algorithm
    "is just as applicable ... to event rules systems"; this module
    makes that concrete.

    An ER system is a set of repetitive events and rules
    [(u, v, delay, count)] meaning occurrence [k] of [v] waits for
    occurrence [k - count] of [u] plus [delay].  Unlike a Signal
    Graph's boolean marking, [count] is an arbitrary natural number —
    e.g. a FIFO of capacity 4 between two pipeline stages is a single
    backward rule with [count = 4].

    Analysis proceeds by expansion to an initially-safe Timed Signal
    Graph: a rule with [count = e >= 2] becomes a chain of [e - 1]
    auxiliary buffer events joined by marked arcs (the paper's own
    remark that "any initially-non-safe graph can be transformed into
    an equivalent initially-safe one").  Every cycle through the rule
    picks up exactly [e] tokens and [delay] length, so cycle ratios —
    hence the cycle time — are preserved. *)

type rule = {
  source : Event.t;
  target : Event.t;
  delay : float;
  count : int;  (** occurrence offset; 0 = same occurrence *)
}

type t

val make : events:Event.t list -> rules:rule list -> t
(** Declares the system.  All events are repetitive.
    @raise Invalid_argument on duplicate events, rules over undeclared
    events, negative delays or negative counts. *)

val events : t -> Event.t list
val rules : t -> rule list

val to_signal_graph : t -> Signal_graph.t
(** The expanded Timed Signal Graph.  Original events keep their
    names; auxiliary buffer events are named [_buf<k>+] and can be
    recognised by their signal prefix ["_buf"].
    @raise Invalid_argument if the expansion fails validation (e.g. a
    rule cycle with zero total count — a deadlock). *)

val cycle_time : ?jobs:int -> t -> float
(** The cycle time of the system (via the expansion).
    @raise Cycle_time.Not_analyzable / Invalid_argument as above. *)

val analyze : ?jobs:int -> t -> Cycle_time.report * Signal_graph.t
(** Full analysis; the report's event and arc ids refer to the
    returned expanded graph. *)
