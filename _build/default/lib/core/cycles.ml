type cycle = {
  arc_ids : int list;
  events : int list;
  length : float;
  occurrence_period : int;
}

let effective_length c =
  if c.occurrence_period = 0 then
    invalid_arg "Cycles.effective_length: cycle with zero occurrence period";
  c.length /. float_of_int c.occurrence_period

let of_arc_ids g arc_ids =
  match arc_ids with
  | [] -> invalid_arg "Cycles.of_arc_ids: empty cycle"
  | first :: _ ->
    let rec check prev = function
      | [] ->
        let a0 = Signal_graph.arc g first in
        if prev <> a0.Signal_graph.arc_src then
          invalid_arg "Cycles.of_arc_ids: arc sequence is not closed"
      | aid :: rest ->
        let a = Signal_graph.arc g aid in
        if a.Signal_graph.arc_src <> prev then
          invalid_arg "Cycles.of_arc_ids: arcs do not form a path";
        check a.Signal_graph.arc_dst rest
    in
    let a0 = Signal_graph.arc g first in
    check a0.Signal_graph.arc_src arc_ids;
    let events = List.map (fun aid -> (Signal_graph.arc g aid).Signal_graph.arc_src) arc_ids in
    let length =
      List.fold_left (fun acc aid -> acc +. (Signal_graph.arc g aid).Signal_graph.delay) 0. arc_ids
    in
    let occurrence_period =
      List.fold_left
        (fun acc aid -> if (Signal_graph.arc g aid).Signal_graph.marked then acc + 1 else acc)
        0 arc_ids
    in
    { arc_ids; events; length; occurrence_period }

(* Parallel arcs would be conflated by a vertex-level cycle enumeration,
   so we subdivide: every repetitive-part arc becomes an auxiliary
   vertex.  Event ids stay below the auxiliary ids, hence Johnson's
   smallest-vertex-first cycles always start at an event vertex. *)
let simple_cycles ?limit ?arcs g =
  let n = Signal_graph.event_count g in
  let allowed =
    match arcs with
    | None -> fun _ -> true
    | Some ids ->
      let set = Hashtbl.create (List.length ids) in
      List.iter (fun i -> Hashtbl.replace set i ()) ids;
      Hashtbl.mem set
  in
  let rep_arcs =
    let acc = ref [] in
    Array.iteri
      (fun i (a : Signal_graph.arc) ->
        if
          allowed i
          && Signal_graph.is_repetitive g a.arc_src
          && Signal_graph.is_repetitive g a.arc_dst
        then acc := i :: !acc)
      (Signal_graph.arcs g);
    List.rev !acc
  in
  let dg = Tsg_graph.Digraph.create ~capacity:(n + List.length rep_arcs + 1) () in
  Tsg_graph.Digraph.add_vertices dg n;
  let arc_of_aux = Hashtbl.create 64 in
  List.iter
    (fun aid ->
      let a = Signal_graph.arc g aid in
      let w = Tsg_graph.Digraph.add_vertex dg in
      Hashtbl.add arc_of_aux w aid;
      Tsg_graph.Digraph.add_arc dg ~src:a.Signal_graph.arc_src ~dst:w ();
      Tsg_graph.Digraph.add_arc dg ~src:w ~dst:a.Signal_graph.arc_dst ())
    rep_arcs;
  let extract vertices =
    let arc_ids =
      List.filter_map (fun v -> Hashtbl.find_opt arc_of_aux v) vertices
    in
    of_arc_ids g arc_ids
  in
  List.rev
    (Tsg_graph.Simple_cycles.fold ?limit dg ~init:[] ~f:(fun acc vs -> extract vs :: acc))

let max_occurrence_period ?limit g =
  List.fold_left (fun acc c -> max acc c.occurrence_period) 0 (simple_cycles ?limit g)

let decompose_closed_walk g arc_ids =
  match arc_ids with
  | [] -> []
  | first :: _ ->
    let start = (Signal_graph.arc g first).Signal_graph.arc_src in
    let depth_of_event = Hashtbl.create 16 in
    Hashtbl.add depth_of_event start 0;
    (* stack of arcs walked so far (most recent first) *)
    let stack = ref [] in
    let depth = ref 0 in
    let cycles = ref [] in
    let pop_cycle upto_depth =
      let count = !depth - upto_depth in
      let rec take k acc rest =
        if k = 0 then (acc, rest)
        else
          match rest with
          | [] -> assert false
          | aid :: tl ->
            (* the popped arc's source leaves the walk *)
            Hashtbl.remove depth_of_event (Signal_graph.arc g aid).Signal_graph.arc_src;
            take (k - 1) (aid :: acc) tl
      in
      let cycle_arcs, rest = take count [] !stack in
      stack := rest;
      depth := upto_depth;
      cycles := of_arc_ids g cycle_arcs :: !cycles
    in
    List.iter
      (fun aid ->
        let a = Signal_graph.arc g aid in
        stack := aid :: !stack;
        incr depth;
        (match Hashtbl.find_opt depth_of_event a.Signal_graph.arc_dst with
        | Some d ->
          pop_cycle d;
          (* the destination stays on the walk at its original depth *)
          Hashtbl.replace depth_of_event a.Signal_graph.arc_dst d
        | None -> Hashtbl.add depth_of_event a.Signal_graph.arc_dst !depth))
      arc_ids;
    List.rev !cycles

let pp_cycle g ppf c =
  match c.arc_ids with
  | [] -> Fmt.string ppf "<empty cycle>"
  | arc_ids ->
    List.iter
      (fun aid ->
        let a = Signal_graph.arc g aid in
        Fmt.pf ppf "%a -%g%s-> " Event.pp
          (Signal_graph.event g a.Signal_graph.arc_src)
          a.Signal_graph.delay
          (if a.Signal_graph.marked then "*" else ""))
      arc_ids;
    let first = Signal_graph.arc g (List.hd arc_ids) in
    Event.pp ppf (Signal_graph.event g first.Signal_graph.arc_src)
