(** Cycles of a Timed Signal Graph and their effective lengths
    (Section V).

    A cycle is a closed path through repetitive events.  Its {e length}
    is the sum of its arc delays, its {e occurrence period} [eps] the
    number of initially marked arcs it contains (= the number of
    unfolding periods its unfolded counterpart spans), and its
    {e effective length} the ratio [length / eps].  The cycle time of
    the graph is the maximum effective length over all simple cycles
    (Propositions 4 and 5). *)

type cycle = {
  arc_ids : int list;  (** the arcs of the cycle, in order *)
  events : int list;  (** the event ids visited, in order (same length) *)
  length : float;  (** sum of delays *)
  occurrence_period : int;  (** eps: number of marked arcs *)
}

val effective_length : cycle -> float
(** [length / occurrence_period].  @raise Invalid_argument when the
    occurrence period is 0 (such a cycle makes the graph non-live and
    is rejected by validation). *)

val of_arc_ids : Signal_graph.t -> int list -> cycle
(** Reconstitutes a cycle record from a closed arc sequence.
    @raise Invalid_argument if the arcs do not form a closed path. *)

val simple_cycles : ?limit:int -> ?arcs:int list -> Signal_graph.t -> cycle list
(** All simple cycles of the repetitive part (Johnson's algorithm on
    the arc-subdivided graph, so parallel arcs yield distinct cycles).
    [limit] caps the number of cycles returned; [arcs] restricts the
    enumeration to cycles using only the given arc ids (used for
    critical-cycle enumeration on the zero-slack subgraph). *)

val max_occurrence_period : ?limit:int -> Signal_graph.t -> int
(** The largest occurrence period among the simple cycles — the
    quantity bounded by the minimum cut set in Proposition 6. *)

val decompose_closed_walk : Signal_graph.t -> int list -> cycle list
(** Decomposes a closed walk (given as its arc-id sequence) into simple
    cycles by repeatedly cutting out sub-cycles at repeated events
    (used by Proposition 5 and by critical-cycle extraction). *)

val pp_cycle : Signal_graph.t -> cycle Fmt.t
(** Prints a cycle as [a+ -3-> c+ -2-> a- ... -> a+]. *)
