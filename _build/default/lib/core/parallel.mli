(** Minimal deterministic fork-join parallelism over OCaml 5 domains.

    Used for the embarrassingly parallel outer loops of the library:
    the per-border-event simulations of {!Cycle_time} and the
    independent runs of {!Monte_carlo}.  Work items are claimed from a
    shared atomic counter, so results land at their input's index and
    the output is identical to the sequential map regardless of
    scheduling. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs], computed on
    [min jobs (Array.length xs)] domains ([jobs <= 1] runs inline).
    [f] must be safe to run concurrently (pure, or touching disjoint
    state); exceptions raised by [f] are re-raised in the caller. *)
