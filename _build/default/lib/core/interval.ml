type t = { lower : float; upper : float }

let cycle_time g ~delay_bounds =
  Array.iteri
    (fun i (_ : Signal_graph.arc) ->
      let lo, hi = delay_bounds i in
      if lo < 0. || lo > hi then
        invalid_arg (Printf.sprintf "Interval.cycle_time: bad bounds [%g, %g] on arc %d" lo hi i))
    (Signal_graph.arcs g);
  let lower_graph = Transform.map_delays g ~f:(fun i _ -> fst (delay_bounds i)) in
  let upper_graph = Transform.map_delays g ~f:(fun i _ -> snd (delay_bounds i)) in
  {
    lower = Cycle_time.cycle_time lower_graph;
    upper = Cycle_time.cycle_time upper_graph;
  }

type simulation_bounds = {
  unfolding : Unfolding.t;
  earliest : float array;
  latest : float array;
}

let simulate g ~delay_bounds ~periods =
  Array.iteri
    (fun i (_ : Signal_graph.arc) ->
      let lo, hi = delay_bounds i in
      if lo < 0. || lo > hi then
        invalid_arg (Printf.sprintf "Interval.simulate: bad bounds [%g, %g] on arc %d" lo hi i))
    (Signal_graph.arcs g);
  let corner pick =
    let g' = Transform.map_delays g ~f:(fun i _ -> pick (delay_bounds i)) in
    let u = Unfolding.make g' ~periods in
    (Timing_sim.simulate u).Timing_sim.time
  in
  {
    unfolding = Unfolding.make g ~periods;
    earliest = corner fst;
    latest = corner snd;
  }

let separation_bounds bounds ~from_ ~to_ =
  let instance (event, period) =
    Unfolding.instance bounds.unfolding ~event ~period
  in
  let f = instance from_ and t = instance to_ in
  (bounds.earliest.(t) -. bounds.latest.(f), bounds.latest.(t) -. bounds.earliest.(f))

let of_relative_tolerance g ~percent =
  if percent < 0. || percent > 100. then
    invalid_arg "Interval.of_relative_tolerance: percent must be within [0, 100]";
  let factor = percent /. 100. in
  cycle_time g ~delay_bounds:(fun i ->
      let d = (Signal_graph.arc g i).Signal_graph.delay in
      (d *. (1. -. factor), d *. (1. +. factor)))
