# an acyclic activity network for `tsa pert` (makespan 12 through the
# order -> deliver branch)
.model project
.events
start+ initial
dig+ nonrep
pour+ nonrep
order+ nonrep
deliver+ nonrep
build+ nonrep
.graph
start+ dig+ 3
dig+ pour+ 2
start+ order+ 1
order+ deliver+ 6
pour+ build+ 5
deliver+ build+ 5
.end
