# a four-phase handshake in the petrify/astg dialect (auto-detected by
# the .marking line); unit delays are assumed: lambda = 4
.model petrify_ring
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
