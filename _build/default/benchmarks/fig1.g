.model fig1
.events
e- initial
f- nonrep
a+ rep
a- rep
b+ rep
b- rep
c+ rep
c- rep
.graph
e- f- 3
e- a+ 2 once
f- b+ 1 once
a+ c+ 3
b+ c+ 2
c+ a- 2
c+ b- 1
a- c- 3
b- c- 2
c- a+ 2 token
c- b+ 1 token
.end
