# an unbalanced fork/join loop: lambda = longest branch + fork + join = 7
.model fork_join
.events
fork+
join+
p0+
p1+
p2+
q0+
r0+
r1+
r2+
r3+
r4+
.graph
fork+ p0+ 1
p0+ p1+ 1
p1+ p2+ 1
p2+ join+ 1
fork+ q0+ 1
q0+ join+ 1
fork+ r0+ 1
r0+ r1+ 1
r1+ r2+ 1
r2+ r3+ 1
r3+ r4+ 1
r4+ join+ 1
join+ fork+ 1 token
.end
