.model ring5
.events
a+ rep
a- rep
b+ rep
b- rep
c+ rep
c- rep
d+ rep
d- rep
e+ rep
e- rep
ia+ rep
ia- rep
ib+ rep
ib- rep
ic+ rep
ic- rep
id+ rep
id- rep
ie+ rep
ie- rep
.graph
e+ a+ 1 token
ib+ a+ 1 token
e- a- 1
ib- a- 1
a+ ia- 1
a- ia+ 1
a+ b+ 1
ic+ b+ 1 token
a- b- 1
ic- b- 1
b+ ib- 1
b- ib+ 1
b+ c+ 1
id+ c+ 1 token
b- c- 1
id- c- 1
c+ ic- 1
c- ic+ 1
c+ d+ 1
ie+ d+ 1
c- d- 1
ie- d- 1
d+ id- 1
d- id+ 1
d+ e+ 1
ia+ e+ 1
d- e- 1 token
ia- e- 1
e+ ie- 1
e- ie+ 1
.end
