# producer/consumer through a capacity-2 FIFO (hand expansion of the
# event-rule system; lambda = max(2, 2, (1 + 9) / 2) = 5)
.model fifo2
.graph
p+ p+ 2 token
c+ c+ 2 token
p+ c+ 1
c+ buf+ 9 token
buf+ p+ 0 token
.end
