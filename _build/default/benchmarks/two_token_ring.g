# the Proposition 6 erratum witness: {e0+} is a minimum cut set, yet
# the unique simple cycle carries two tokens (lambda = 4/2 = 2)
.model two_token_ring
.graph
e0+ e1+ 1
e1+ e2+ 1 token
e2+ e3+ 1
e3+ e0+ 1 token
.end
