.model stack
.events
r0+ rep
r0- rep
a0+ rep
a0- rep
r1+ rep
r1- rep
a1+ rep
a1- rep
r2+ rep
r2- rep
a2+ rep
a2- rep
r3+ rep
r3- rep
a3+ rep
a3- rep
r4+ rep
r4- rep
a4+ rep
a4- rep
r5+ rep
r5- rep
a5+ rep
a5- rep
r6+ rep
r6- rep
a6+ rep
a6- rep
r7+ rep
r7- rep
a7+ rep
a7- rep
r8+ rep
r8- rep
a8+ rep
a8- rep
r9+ rep
r9- rep
a9+ rep
a9- rep
r10+ rep
r10- rep
a10+ rep
a10- rep
r11+ rep
r11- rep
a11+ rep
a11- rep
r12+ rep
r12- rep
a12+ rep
a12- rep
r13+ rep
r13- rep
a13+ rep
a13- rep
r14+ rep
r14- rep
a14+ rep
a14- rep
r15+ rep
r15- rep
a15+ rep
a15- rep
go+ rep
go- rep
.graph
r0+ a0+ 1
a0+ r0- 1
r0- a0- 1
a0- r0+ 1 token
r1+ a1+ 1
a1+ r1- 1
r1- a1- 1
a1- r1+ 1 token
r2+ a2+ 1
a2+ r2- 1
r2- a2- 1
a2- r2+ 1 token
r3+ a3+ 1
a3+ r3- 1
r3- a3- 1
a3- r3+ 1 token
r4+ a4+ 1
a4+ r4- 1
r4- a4- 1
a4- r4+ 1 token
r5+ a5+ 1
a5+ r5- 1
r5- a5- 1
a5- r5+ 1 token
r6+ a6+ 1
a6+ r6- 1
r6- a6- 1
a6- r6+ 1 token
r7+ a7+ 1
a7+ r7- 1
r7- a7- 1
a7- r7+ 1 token
r8+ a8+ 1
a8+ r8- 1
r8- a8- 1
a8- r8+ 1 token
r9+ a9+ 1
a9+ r9- 1
r9- a9- 1
a9- r9+ 1 token
r10+ a10+ 1
a10+ r10- 1
r10- a10- 1
a10- r10+ 1 token
r11+ a11+ 1
a11+ r11- 1
r11- a11- 1
a11- r11+ 1 token
r12+ a12+ 1
a12+ r12- 1
r12- a12- 1
a12- r12+ 1 token
r13+ a13+ 1
a13+ r13- 1
r13- a13- 1
a13- r13+ 1 token
r14+ a14+ 1
a14+ r14- 1
r14- a14- 1
a14- r14+ 1 token
r15+ a15+ 1
a15+ r15- 1
r15- a15- 1
a15- r15+ 1 token
a0+ r1+ 1
a1+ r0- 1
a1+ r2+ 1
a2+ r1- 1
a2+ r3+ 1
a3+ r2- 1
a3+ r4+ 1
a4+ r3- 1
a4+ r5+ 1
a5+ r4- 1
a5+ r6+ 1
a6+ r5- 1
a6+ r7+ 1
a7+ r6- 1
a7+ r8+ 1
a8+ r7- 1
a8+ r9+ 1
a9+ r8- 1
a9+ r10+ 1
a10+ r9- 1
a10+ r11+ 1
a11+ r10- 1
a11+ r12+ 1
a12+ r11- 1
a12+ r13+ 1
a13+ r12- 1
a13+ r14+ 1
a14+ r13- 1
a14+ r15+ 1
a15+ r14- 1
a1- r0+ 1 token
a2- r1+ 1 token
a3- r2+ 1 token
a4- r3+ 1 token
a5- r4+ 1 token
a6- r5+ 1 token
a7- r6+ 1 token
a8- r7+ 1 token
a9- r8+ 1 token
a10- r9+ 1 token
a11- r10+ 1 token
a12- r11+ 1 token
a13- r12+ 1 token
a14- r13+ 1 token
a15+ go+ 1
go+ r0+ 1 token
a15- go- 1 token
go- go+ 1
.end
