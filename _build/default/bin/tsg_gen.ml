(* tsg-gen — parametric Timed Signal Graph generator.

   Emits models in the native .g format, ready for `tsa analyze`:

     tsg-gen ring --events 100 --tokens 3
     tsg-gen muller --stages 8
     tsg-gen handshake --cells 16
     tsg-gen forkjoin --branches 3,1,5
     tsg-gen random --events 10 --extra 6 --seed 7
     tsg-gen complete --events 6 *)

open Cmdliner

let emit ?output ~model g =
  let text = Tsg_io.Stg_format.to_string ~model g in
  match output with
  | None -> print_string text
  | Some path ->
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
    Fmt.pr "wrote %s@." path

let output_arg =
  let doc = "Write to FILE instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let delay_arg =
  let doc = "Uniform arc delay." in
  Arg.(value & opt float 1. & info [ "delay" ] ~docv:"D" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let wrap_errors f =
  try f () with Invalid_argument msg ->
    Fmt.epr "tsg-gen: %s@." msg;
    exit 1

let ring_cmd =
  let events_arg =
    Arg.(value & opt int 10 & info [ "events" ] ~docv:"N" ~doc:"Number of events.")
  in
  let tokens_arg =
    Arg.(value & opt int 1 & info [ "tokens" ] ~docv:"K" ~doc:"Number of tokens.")
  in
  let run events tokens delay output =
    wrap_errors (fun () ->
        emit ?output
          ~model:(Printf.sprintf "ring_%d_%d" events tokens)
          (Tsg_circuit.Generators.ring_tsg ~delay ~events ~tokens ()))
  in
  let doc = "A plain ring: cycle time = delay * events / tokens." in
  Cmd.v (Cmd.info "ring" ~doc)
    Term.(const run $ events_arg $ tokens_arg $ delay_arg $ output_arg)

let muller_cmd =
  let stages_arg =
    Arg.(value & opt int 5 & info [ "stages" ] ~docv:"N" ~doc:"Ring stages.")
  in
  let high_arg =
    let doc = "Comma-separated stage indices that start high (data tokens)." in
    Arg.(value & opt (some (list int)) None & info [ "high" ] ~docv:"K,K,..." ~doc)
  in
  let run stages high delay output =
    wrap_errors (fun () ->
        emit ?output
          ~model:(Printf.sprintf "muller_%d" stages)
          (Tsg_circuit.Circuit_library.muller_ring_tsg ~delay ?high_stages:high ~stages ()))
  in
  let doc = "A Muller C-element ring (Section VIII.D of the paper)." in
  Cmd.v (Cmd.info "muller" ~doc)
    Term.(const run $ stages_arg $ high_arg $ delay_arg $ output_arg)

let handshake_cmd =
  let cells_arg =
    Arg.(value & opt int 8 & info [ "cells" ] ~docv:"N" ~doc:"Handshake cells.")
  in
  let run cells delay output =
    wrap_errors (fun () ->
        emit ?output
          ~model:(Printf.sprintf "handshake_%d" cells)
          (Tsg_circuit.Circuit_library.handshake_ring_tsg ~delay ~cells ()))
  in
  let doc = "A stack-controller handshake ring (the Section VIII.B family)." in
  Cmd.v (Cmd.info "handshake" ~doc) Term.(const run $ cells_arg $ delay_arg $ output_arg)

let forkjoin_cmd =
  let branches_arg =
    let doc = "Comma-separated branch lengths." in
    Arg.(value & opt (list int) [ 3; 1; 5 ] & info [ "branches" ] ~docv:"L,L,..." ~doc)
  in
  let run branches delay output =
    wrap_errors (fun () ->
        emit ?output ~model:"forkjoin"
          (Tsg_circuit.Generators.fork_join_tsg ~delay ~branches ()))
  in
  let doc = "A fork/join loop: cycle time = (longest branch + 2) * delay." in
  Cmd.v (Cmd.info "forkjoin" ~doc) Term.(const run $ branches_arg $ delay_arg $ output_arg)

let random_cmd =
  let events_arg =
    Arg.(value & opt int 8 & info [ "events" ] ~docv:"N" ~doc:"Number of events.")
  in
  let extra_arg =
    Arg.(value & opt int 5 & info [ "extra" ] ~docv:"M" ~doc:"Number of random chords.")
  in
  let max_delay_arg =
    Arg.(value & opt int 10 & info [ "max-delay" ] ~docv:"D" ~doc:"Maximum integer delay.")
  in
  let run events extra max_delay seed output =
    wrap_errors (fun () ->
        emit ?output
          ~model:(Printf.sprintf "random_%d" seed)
          (Tsg_circuit.Generators.random_live_tsg ~seed ~max_delay ~events ~extra_arcs:extra ()))
  in
  let doc = "A random live, strongly connected Timed Signal Graph." in
  Cmd.v (Cmd.info "random" ~doc)
    Term.(const run $ events_arg $ extra_arg $ max_delay_arg $ seed_arg $ output_arg)

let complete_cmd =
  let events_arg =
    Arg.(value & opt int 5 & info [ "events" ] ~docv:"N" ~doc:"Number of events.")
  in
  let run events seed output =
    wrap_errors (fun () ->
        emit ?output
          ~model:(Printf.sprintf "complete_%d" events)
          (Tsg_circuit.Generators.complete_tsg ~seed ~events ()))
  in
  let doc = "The complete digraph (worst case for cycle enumeration)." in
  Cmd.v (Cmd.info "complete" ~doc) Term.(const run $ events_arg $ seed_arg $ output_arg)

let () =
  let doc = "generate parametric Timed Signal Graph models" in
  let info = Cmd.info "tsg-gen" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ ring_cmd; muller_cmd; handshake_cmd; forkjoin_cmd; random_cmd; complete_cmd ]))
