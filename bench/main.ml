(* Benchmark and reproduction harness.

   Regenerates every evaluation artefact of the paper (the experiment
   index E1-E12 of DESIGN.md) and times the algorithms with Bechamel.

     dune exec bench/main.exe              # tables + timings
     dune exec bench/main.exe -- --tables  # tables only
     dune exec bench/main.exe -- --bench   # timings only *)

open Tsg
open Bechamel

let section id title =
  Fmt.pr "@.======================================================================@.";
  Fmt.pr "%s  %s@." id title;
  Fmt.pr "======================================================================@.@."

(* wall clock, not Sys.time: CPU time sums across domains, so
   multi-domain runs would look slower the better they parallelise *)
let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, (Unix.gettimeofday () -. t0) *. 1000.)

let fig1 = Tsg_circuit.Circuit_library.fig1_tsg ()
let ring5 = Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:5 ()
let stack66 = Tsg_circuit.Circuit_library.async_stack_tsg ()

let named_instances g u names =
  List.map (fun (n, p) -> (Signal_graph.id g (Event.of_string_exn n), p)) names
  |> List.map (fun (e, p) -> (e, p, Unfolding.instance u ~event:e ~period:p))

(* ------------------------------------------------------------------ *)
(* E1: Example 3 — the initial timing simulation table                 *)

let table_e1 () =
  section "E1" "Initial timing simulation of the C-element oscillator (Example 3)";
  let u = Unfolding.make fig1 ~periods:2 in
  let sim = Timing_sim.simulate u in
  let events =
    List.map
      (fun (e, p, _) -> (e, p))
      (named_instances fig1 u
         [
           ("e-", 0); ("f-", 0); ("a+", 0); ("b+", 0); ("c+", 0); ("a-", 0);
           ("b-", 0); ("c-", 0); ("a+", 1); ("b+", 1); ("c+", 1);
         ])
  in
  Fmt.pr "%t@." (Tsg_io.Report.pp_simulation_table u sim ~events);
  Fmt.pr "paper row:  0 3 2 4 6 8 7 11 13 12 16@."

(* E2: Example 4 — the b+0-initiated simulation                        *)

let table_e2 () =
  section "E2" "b+-initiated timing simulation (Example 4)";
  let u = Unfolding.make fig1 ~periods:2 in
  let b0 = Unfolding.instance u ~event:(Signal_graph.id fig1 (Event.of_string_exn "b+")) ~period:0 in
  let sim = Timing_sim.simulate_initiated u ~at:b0 in
  let events =
    List.map
      (fun (e, p, _) -> (e, p))
      (named_instances fig1 u
         [ ("b+", 0); ("c+", 0); ("a-", 0); ("b-", 0); ("c-", 0); ("a+", 1); ("b+", 1); ("c+", 1) ])
  in
  Fmt.pr "%t@." (Tsg_io.Report.pp_simulation_table u sim ~events);
  Fmt.pr "paper row:  0 2 4 3 7 9 8 12@."

(* E3: Fig. 1c and Fig. 1d — timing diagrams                           *)

let table_e3 () =
  section "E3" "Timing diagrams (Fig. 1c full / Fig. 1d a+-initiated)";
  let u = Unfolding.make fig1 ~periods:8 in
  Fmt.pr "full simulation:@.";
  print_string (Tsg_io.Timing_diagram.render u (Timing_sim.simulate u));
  let a0 = Unfolding.instance u ~event:(Signal_graph.id fig1 (Event.of_string_exn "a+")) ~period:0 in
  Fmt.pr "@.a+-initiated (history discarded):@.";
  print_string (Tsg_io.Timing_diagram.render u (Timing_sim.simulate_initiated u ~at:a0))

(* E4: Examples 5-6 — simple cycles and effective lengths              *)

let table_e4 () =
  section "E4" "Simple cycles of the oscillator (Examples 5-6)";
  List.iter
    (fun c ->
      Fmt.pr "%a   C = %g  eps = %d  C/eps = %g@." (Cycles.pp_cycle fig1) c c.Cycles.length
        c.Cycles.occurrence_period (Cycles.effective_length c))
    (Cycles.simple_cycles fig1);
  Fmt.pr "@.paper: lengths {10, 8, 8, 6}, all eps = 1, lambda = max = 10@."

(* E5: Example 7 — border and cut sets                                 *)

let table_e5 () =
  section "E5" "Cut sets (Example 7)";
  let names ids = String.concat ", " (List.map (fun e -> Event.to_string (Signal_graph.event fig1 e)) ids) in
  Fmt.pr "border set:        {%s}   (paper: {a+, b+})@." (names (Cut_set.border fig1));
  Fmt.pr "greedy small cut:  {%s}   (paper notes {c+} and {c-} are minimum)@."
    (names (Cut_set.greedy_small fig1));
  let check s =
    let ids = List.map (fun n -> Signal_graph.id fig1 (Event.of_string_exn n)) s in
    Fmt.pr "is_cut_set {%s} = %b@." (String.concat ", " s) (Cut_set.is_cut_set fig1 ids)
  in
  List.iter check [ [ "c+" ]; [ "c-" ]; [ "a-"; "b-" ]; [ "a+" ] ]

(* E6: Section VIII.C — the full analysis                              *)

let table_e6 () =
  section "E6" "Cycle-time analysis of the oscillator (Section VIII.C)";
  let report = Cycle_time.analyze fig1 in
  Fmt.pr "%a@." (Tsg_io.Report.pp_report fig1) report;
  Fmt.pr "paper: Delta tables {10, 10} and {8, 9}; lambda = 10.@.";
  Fmt.pr "note:  Section VIII.C prints the critical cycle as a+ c+ b- c- (length 8),@.";
  Fmt.pr "       but Example 6 and Section II give C1 = a+ c+ a- c- (length 10);@.";
  Fmt.pr "       backtracking correctly recovers C1 (the text is a typo).@."

(* E7: Section VIII.D — the Muller ring                                *)

let table_e7 () =
  section "E7" "Muller ring of five C-elements (Section VIII.D)";
  let report = Cycle_time.analyze ring5 in
  Fmt.pr "%a@." (Tsg_io.Report.pp_report ring5) report;
  let u = Unfolding.make ring5 ~periods:11 in
  let a = Signal_graph.id ring5 (Event.of_string_exn "a+") in
  let sim = Timing_sim.simulate_initiated u ~at:(Unfolding.instance u ~event:a ~period:0) in
  Fmt.pr "ten-period extension of the paper's table:@.";
  Fmt.pr "i          ";
  for i = 1 to 10 do Fmt.pr "%7d" i done;
  Fmt.pr "@.t_a+0(a+i) ";
  for i = 1 to 10 do
    Fmt.pr "%7g" sim.Timing_sim.time.(Unfolding.instance u ~event:a ~period:i)
  done;
  Fmt.pr "@.Delta      ";
  for i = 1 to 10 do
    Fmt.pr "%7.4g" (Timing_sim.initiated_average_distance u sim ~event:a ~period:i)
  done;
  Fmt.pr "@.paper t:        6     13     20     26     33     40     46     53     60     66@.";
  Fmt.pr "paper Delta:    6    6.5   6.67    6.5    6.6   6.67   6.57   6.63   6.67    6.6@."

(* E8: Fig. 4 — asymptotics on vs. off the critical cycle              *)

let table_e8 () =
  section "E8" "Asymptotic behaviour of Delta (Fig. 4)";
  let periods = [ 1; 2; 3; 4; 5; 8; 12; 20; 40 ] in
  let u = Unfolding.make fig1 ~periods:41 in
  let series name =
    let e = Signal_graph.id fig1 (Event.of_string_exn name) in
    let sim = Timing_sim.simulate_initiated u ~at:(Unfolding.instance u ~event:e ~period:0) in
    List.map (fun i -> Timing_sim.initiated_average_distance u sim ~event:e ~period:i) periods
  in
  Fmt.pr "periods:              ";
  List.iter (fun i -> Fmt.pr "%7d" i) periods;
  Fmt.pr "@.a+ (on critical):     ";
  List.iter (fun d -> Fmt.pr "%7.3f" d) (series "a+");
  Fmt.pr "@.b+ (off critical):    ";
  List.iter (fun d -> Fmt.pr "%7.3f" d) (series "b+");
  Fmt.pr
    "@.@.shape check (paper Fig. 4): the on-critical event reaches the cycle@.\
     time 10 at a finite period and stays; the off-critical event only@.\
     approaches it from below.@."

(* E9: Section VIII.B — the 66-event stack runtime                     *)

let table_e9 () =
  section "E9" "Asynchronous stack runtime (Section VIII.B)";
  Fmt.pr "stack controller: %d events, %d arcs (paper: 66 events, 112 arcs)@."
    (Signal_graph.event_count stack66) (Signal_graph.arc_count stack66);
  let report, first = wall_ms (fun () -> Cycle_time.analyze stack66) in
  let repeats = 200 in
  let (), total = wall_ms (fun () -> for _ = 1 to repeats do ignore (Cycle_time.analyze stack66) done) in
  Fmt.pr "lambda = %a, border size b = %d@." Tsg_io.Report.pp_rational
    report.Cycle_time.cycle_time
    (List.length report.Cycle_time.border);
  Fmt.pr "analysis wall time: %.3f ms first run, %.4f ms steady state@." first
    (total /. float_of_int repeats);
  Fmt.pr "paper: 74 CPU ms on a DEC 5000 (1994); shape check: well under that.@."

(* E10: complexity scaling (Sections I/VII)                            *)

let table_e10 () =
  section "E10" "Scaling: O(b^2 m) vs the classical baselines";
  Fmt.pr "constant-b family (plain rings, two tokens: b = 2, the paper's@.";
  Fmt.pr "\"typically b << n\" regime where the algorithm is linear):@.";
  Fmt.pr "%8s %8s %6s %12s %12s@." "events" "arcs" "b" "tsa ms" "karp ms";
  List.iter
    (fun n ->
      let g = Tsg_circuit.Generators.ring_tsg ~events:n ~tokens:2 () in
      let b = List.length (Cut_set.border g) in
      let l0, t_tsa = wall_ms (fun () -> Cycle_time.cycle_time g) in
      let l1, t_karp = wall_ms (fun () -> Tsg_baselines.Karp.cycle_time g) in
      assert (abs_float (l0 -. l1) < 1e-6);
      Fmt.pr "%8d %8d %6d %12.3f %12.3f@." n (Signal_graph.arc_count g) b t_tsa t_karp)
    [ 1_000; 4_000; 16_000; 64_000; 256_000 ];
  Fmt.pr "@.Muller rings (every stage contributes a border event, b ~ n: the@.";
  Fmt.pr "paper's worst-case O(n^2 m) regime):@.";
  Fmt.pr "%8s %8s %8s %6s %12s %12s %12s %12s %12s@." "stages" "events" "arcs" "b" "tsa ms"
    "karp ms" "howard ms" "lawler ms" "maxplus ms";
  List.iter
    (fun stages ->
      let g = Tsg_circuit.Circuit_library.muller_ring_tsg ~stages () in
      let b = List.length (Cut_set.border g) in
      let l0, t_tsa = wall_ms (fun () -> Cycle_time.cycle_time g) in
      let l1, t_karp = wall_ms (fun () -> Tsg_baselines.Karp.cycle_time g) in
      let l2, t_how = wall_ms (fun () -> Tsg_baselines.Howard.cycle_time g) in
      let l3, t_law = wall_ms (fun () -> Tsg_baselines.Lawler.cycle_time g) in
      let l4, t_mp = wall_ms (fun () -> Tsg_maxplus.Of_signal_graph.cycle_time g) in
      assert (abs_float (l0 -. l1) < 1e-6 && abs_float (l0 -. l2) < 1e-6
              && abs_float (l0 -. l3) < 1e-4 && abs_float (l0 -. l4) < 1e-6);
      Fmt.pr "%8d %8d %8d %6d %12.3f %12.3f %12.3f %12.3f %12.3f@." stages
        (Signal_graph.event_count g) (Signal_graph.arc_count g) b t_tsa t_karp t_how
        t_law t_mp)
    [ 8; 16; 32; 64; 128; 256 ];
  Fmt.pr "@.handshake rings (b grows with the size: the b^2 regime):@.";
  Fmt.pr "%8s %8s %8s %6s %12s %12s@." "cells" "events" "arcs" "b" "tsa ms" "karp ms";
  List.iter
    (fun cells ->
      let g = Tsg_circuit.Circuit_library.handshake_ring_tsg ~cells () in
      let b = List.length (Cut_set.border g) in
      let _, t_tsa = wall_ms (fun () -> Cycle_time.cycle_time g) in
      let _, t_karp = wall_ms (fun () -> Tsg_baselines.Karp.cycle_time g) in
      Fmt.pr "%8d %8d %8d %6d %12.3f %12.3f@." cells (Signal_graph.event_count g)
        (Signal_graph.arc_count g) b t_tsa t_karp)
    [ 8; 16; 32; 64; 128 ];
  Fmt.pr "@.exhaustive enumeration blow-up (complete graphs, Section II strawman):@.";
  Fmt.pr "%8s %8s %10s %14s %12s@." "events" "arcs" "cycles" "exhaustive ms" "tsa ms";
  List.iter
    (fun n ->
      let g = Tsg_circuit.Generators.complete_tsg ~events:n () in
      let cycles, t_exh = wall_ms (fun () -> Tsg_baselines.Exhaustive.cycle_count g) in
      let _, t_tsa = wall_ms (fun () -> Cycle_time.cycle_time g) in
      Fmt.pr "%8d %8d %10d %14.3f %12.3f@." n (Signal_graph.arc_count g) cycles t_exh t_tsa)
    [ 4; 5; 6; 7; 8 ];
  Fmt.pr "@.shape check: near-linear growth for the timing-simulation algorithm@.";
  Fmt.pr "on constant-b families, quadratic-in-b growth on the handshake rings,@.";
  Fmt.pr "and super-exponential cost for exhaustive enumeration.@."

(* E11: ring occupancy ablation                                        *)

let table_e11 () =
  section "E11" "Muller-ring occupancy ablation (extension of Section VIII.D)";
  Fmt.pr "%8s %12s %22s@." "tokens" "cycle time" "cycle time per token";
  List.iter
    (fun k ->
      let high_stages = List.init k (fun j -> ((j * 12 / k) + 11) mod 12) in
      match Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:12 ~high_stages () with
      | g ->
        let lambda = Cycle_time.cycle_time g in
        Fmt.pr "%8d %12.4f %22.4f@." k lambda (lambda /. float_of_int k)
      | exception Invalid_argument _ -> Fmt.pr "%8d   (deadlocked configuration)@." k)
    [ 1; 2; 3; 4; 6; 8 ];
  Fmt.pr "@.shape check: token-limited regime at low occupancy, hole-limited@.";
  Fmt.pr "regime at high occupancy, optimum in between.@."

(* E12: the extraction flow                                            *)

let table_e12 () =
  section "E12" "Net-list to Signal Graph extraction (Section VIII.B flow)";
  let flow name netlist reference =
    let e = Tsg_extract.Traspec.extract netlist in
    let g = e.Tsg_extract.Traspec.graph in
    let lambda = Cycle_time.cycle_time g in
    let lambda_ref = Cycle_time.cycle_time reference in
    Fmt.pr "%-14s: distributive=%b, %d events, %d arcs, lambda=%a (hand-built: %a) %s@."
      name
      (match e.Tsg_extract.Traspec.verdict with
      | Some v -> v.Tsg_extract.Distributive.distributive
      | None -> false)
      (Signal_graph.event_count g) (Signal_graph.arc_count g) Tsg_io.Report.pp_rational
      lambda Tsg_io.Report.pp_rational lambda_ref
      (if abs_float (lambda -. lambda_ref) < 1e-9 then "MATCH" else "MISMATCH")
  in
  flow "fig1" (Tsg_circuit.Circuit_library.fig1_netlist ()) fig1;
  flow "muller-ring-5" (Tsg_circuit.Circuit_library.muller_ring_netlist ()) ring5;
  flow "muller-ring-7" (Tsg_circuit.Circuit_library.muller_ring_netlist ~stages:7 ())
    (Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:7 ())

(* E13: the content-addressed analysis cache behind `tsa serve`.  The
   cached loop pays what a daemon cache hit pays — canonicalise +
   digest the graph, then one table lookup — so the speedup column is
   the honest serve-side amortisation, not just hashtable lookup
   time. *)

let table_e13 () =
  section "E13" "Content-addressed cache: repeated analyses vs cache hits";
  let repeats = 200 in
  Fmt.pr "%-12s %8s %14s %14s %12s %9s@." "model" "repeats" "uncached ms"
    "cached ms" "digest us" "speedup";
  List.iter
    (fun (name, g) ->
      let cache = Tsg_engine.Cache.create ~metrics_prefix:"bench-cache" ~capacity:8 () in
      let analyze () = Cycle_time.analyze g in
      let (), t_uncached =
        wall_ms (fun () -> for _ = 1 to repeats do ignore (analyze ()) done)
      in
      let (), t_cached =
        wall_ms (fun () ->
            for _ = 1 to repeats do
              let key = Signal_graph.digest g in
              ignore (Tsg_engine.Cache.find_or_add cache key analyze)
            done)
      in
      let (), t_digest =
        wall_ms (fun () -> for _ = 1 to repeats do ignore (Signal_graph.digest g) done)
      in
      let s = Tsg_engine.Cache.stats cache in
      assert (s.Tsg_engine.Cache.misses = 1 && s.Tsg_engine.Cache.hits = repeats - 1);
      Fmt.pr "%-12s %8d %14.3f %14.3f %12.3f %8.0fx@." name repeats t_uncached
        t_cached
        (t_digest /. float_of_int repeats *. 1000.)
        (t_uncached /. t_cached))
    [ ("fig1", fig1); ("ring5", ring5); ("stack66", stack66) ];
  Fmt.pr
    "@.shape check: a hit costs one digest plus one lookup, so the speedup@.\
     grows with model size — digesting is linear in the graph while the@.\
     analysis simulates b+1 periods of it.@."

(* A1: ablation — simulation length: the border bound b (what the
   algorithm can know for free) vs the exact maximum occurrence period
   eps_max (which requires enumerating cycles to discover) *)

let table_a1 () =
  section "A1" "Ablation: periods simulated (border bound b vs exact eps_max)";
  Fmt.pr "%-12s %4s %8s %14s %16s %9s@." "model" "b" "eps_max" "b-periods ms"
    "eps-periods ms" "lambda";
  List.iter
    (fun (name, g) ->
      let b = List.length (Cut_set.border g) in
      let eps_max = Cycles.max_occurrence_period g in
      let l1, t_b = wall_ms (fun () -> Cycle_time.cycle_time g) in
      let l2, t_eps = wall_ms (fun () -> Cycle_time.cycle_time ~periods:eps_max g) in
      assert (abs_float (l1 -. l2) < 1e-9);
      Fmt.pr "%-12s %4d %8d %14.3f %16.3f %9g@." name b eps_max t_b t_eps l1)
    [
      ("fig1", fig1);
      ("ring5", ring5);
      ("ring16", Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:16 ());
      ("stack66", stack66);
      ("handshake32", Tsg_circuit.Circuit_library.handshake_ring_tsg ~cells:32 ());
    ];
  Fmt.pr
    "@.the b bound is free (Proposition 7 via the border set) but simulates@.\
     more periods than necessary when eps_max << b; knowing eps_max would@.\
     require cycle enumeration, which is what the algorithm avoids.@."

(* A2: ablation — per-arc slack: one reweighted longest-walk sweep per
   arc target (Slack.analyze) vs the naive binary search that re-runs
   the cycle-time algorithm per probe *)

let naive_slack g lambda arc =
  let lambda_with extra =
    Cycle_time.cycle_time (Transform.add_delay g ~arc extra)
  in
  let hi0 = 1. +. (2. *. lambda *. float_of_int (Signal_graph.event_count g)) in
  if abs_float (lambda_with hi0 -. lambda) < 1e-9 then infinity
  else begin
    let rec bisect lo hi k =
      if k = 0 then lo
      else
        let mid = (lo +. hi) /. 2. in
        if abs_float (lambda_with mid -. lambda) < 1e-9 then bisect mid hi (k - 1)
        else bisect lo mid (k - 1)
    in
    bisect 0. hi0 40
  end

let table_a2 () =
  section "A2" "Ablation: slack computation (walk sweep vs naive binary search)";
  Fmt.pr "%-12s %6s %14s %16s %10s@." "model" "arcs" "sweep ms" "naive ms" "agree";
  List.iter
    (fun (name, g) ->
      let report, t_sweep = wall_ms (fun () -> Slack.analyze g) in
      let naive, t_naive =
        wall_ms (fun () ->
            Array.map
              (fun (s : Slack.arc_slack) -> naive_slack g report.Slack.lambda s.Slack.arc_id)
              report.Slack.arc_slacks)
      in
      let agree =
        Array.for_all2
          (fun (s : Slack.arc_slack) n ->
            (s.Slack.slack = infinity && n = infinity)
            || abs_float (s.Slack.slack -. n) < 1e-4 *. (1. +. abs_float n))
          report.Slack.arc_slacks naive
      in
      Fmt.pr "%-12s %6d %14.3f %16.3f %10b@." name (Signal_graph.arc_count g) t_sweep
        t_naive agree)
    [
      ("fig1", fig1);
      ("ring5", ring5);
      ("ring12", Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:12 ());
    ];
  Fmt.pr "@.the reweighted-graph sweep returns every slack exactly with O(n)@.\
          longest-walk computations; the naive search needs ~40 full analyses@.\
          per arc and only converges to tolerance.@."

(* A3: extension — delay uncertainty: interval corners vs Monte-Carlo
   jitter around the nominal cycle time *)

let table_a3 () =
  section "A3" "Extension: cycle time under delay uncertainty";
  List.iter
    (fun (name, g) ->
      let nominal = Cycle_time.cycle_time g in
      Fmt.pr "%s (nominal %g):@." name nominal;
      Fmt.pr "%8s %10s %10s %12s@." "jitter" "lower" "upper" "MC mean";
      List.iter
        (fun percent ->
          let bracket = Interval.of_relative_tolerance g ~percent in
          let s =
            Monte_carlo.estimate ~runs:10 ~periods:60 g
              ~sampler:(Monte_carlo.uniform_jitter g ~percent)
          in
          Fmt.pr "%7g%% %10.4f %10.4f %12.4f@." percent bracket.Interval.lower
            bracket.Interval.upper s.Monte_carlo.mean)
        [ 0.; 10.; 20. ];
      Fmt.pr "@.")
    [ ("fig1", fig1); ("ring5", ring5) ];
  Fmt.pr "shape check: the Monte-Carlo mean stays inside the corner bracket@.";
  Fmt.pr "and at or above the nominal value (jitter only slows MAX systems).@."

(* A4: ablation — the parametric function vs pointwise re-analysis *)

let table_a4 () =
  section "A4" "Ablation: parametric delay sweep (envelope vs pointwise)";
  let samples = List.init 21 (fun i -> float_of_int i /. 2.) in
  Fmt.pr "%-12s %6s %16s %16s@." "model" "arc" "envelope ms" "pointwise ms";
  List.iter
    (fun (name, g, arc) ->
      let p, t_env = wall_ms (fun () -> Parametric.analyze g ~arc) in
      let direct, t_pw =
        wall_ms (fun () ->
            List.map (fun x -> Cycle_time.cycle_time (Transform.set_delay g ~arc ~delay:x)) samples)
      in
      List.iter2
        (fun x expected -> assert (abs_float (Parametric.eval p x -. expected) < 1e-6))
        samples direct;
      Fmt.pr "%-12s %6d %16.3f %16.3f@." name arc t_env t_pw)
    [
      ("fig1", fig1, 3);
      ("ring5", ring5, 0);
      ("stack66", stack66, 10);
    ];
  Fmt.pr
    "@.the envelope is computed once and answers every 'what if this delay@.\
     were x' query exactly; pointwise re-analysis pays a full run per sample.@."

let all_tables () =
  table_e1 (); table_e2 (); table_e3 (); table_e4 (); table_e5 (); table_e6 ();
  table_e7 (); table_e8 (); table_e9 (); table_e10 (); table_e11 (); table_e12 ();
  table_e13 ();
  table_a1 (); table_a2 (); table_a3 (); table_a4 ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment             *)

let staged f = Staged.stage f

let bench_tests =
  let fig1_u2 = Unfolding.make fig1 ~periods:2 in
  let fig1_b0 =
    Unfolding.instance fig1_u2 ~event:(Signal_graph.id fig1 (Event.of_string_exn "b+")) ~period:0
  in
  let fig1_u8 = Unfolding.make fig1 ~periods:8 in
  let fig1_u41 = Unfolding.make fig1 ~periods:41 in
  let fig1_a41 =
    Unfolding.instance fig1_u41 ~event:(Signal_graph.id fig1 (Event.of_string_exn "a+")) ~period:0
  in
  let ring12_2 = Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:12 ~high_stages:[ 5; 11 ] () in
  let k6 = Tsg_circuit.Generators.complete_tsg ~events:6 () in
  let rings =
    List.map (fun s -> (s, Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:s ())) [ 16; 64; 128 ]
  in
  let hrings =
    List.map (fun c -> (c, Tsg_circuit.Circuit_library.handshake_ring_tsg ~cells:c ())) [ 16; 64 ]
  in
  let fig1_netlist = Tsg_circuit.Circuit_library.fig1_netlist () in
  [
    Test.make ~name:"E1/simulate-fig1" (staged (fun () -> Timing_sim.simulate fig1_u2));
    Test.make ~name:"E2/initiated-fig1"
      (staged (fun () -> Timing_sim.simulate_initiated fig1_u2 ~at:fig1_b0));
    Test.make ~name:"E3/diagram-fig1"
      (staged (fun () -> Tsg_io.Timing_diagram.render fig1_u8 (Timing_sim.simulate fig1_u8)));
    Test.make ~name:"E4/simple-cycles-fig1" (staged (fun () -> Cycles.simple_cycles fig1));
    Test.make ~name:"E5/border-fig1" (staged (fun () -> Cut_set.border fig1));
    Test.make ~name:"E6/analyze-fig1" (staged (fun () -> Cycle_time.analyze fig1));
    Test.make ~name:"E7/analyze-ring5" (staged (fun () -> Cycle_time.analyze ring5));
    Test.make ~name:"E8/initiated-40-periods"
      (staged (fun () -> Timing_sim.simulate_initiated fig1_u41 ~at:fig1_a41));
    Test.make ~name:"E9/analyze-stack66" (staged (fun () -> Cycle_time.analyze stack66));
    (let cache = Tsg_engine.Cache.create ~metrics_prefix:"bench-hit" ~capacity:8 () in
     ignore
       (Tsg_engine.Cache.find_or_add cache (Signal_graph.digest stack66) (fun () ->
            Cycle_time.analyze stack66));
     Test.make ~name:"E13/cache-hit-stack66"
       (staged (fun () ->
            Tsg_engine.Cache.find_or_add cache (Signal_graph.digest stack66) (fun () ->
                Cycle_time.analyze stack66))));
  ]
  @ List.map
      (fun (s, g) ->
        Test.make ~name:(Printf.sprintf "E10/tsa-ring%d" s)
          (staged (fun () -> Cycle_time.cycle_time g)))
      rings
  @ List.map
      (fun (s, g) ->
        Test.make ~name:(Printf.sprintf "E10/karp-ring%d" s)
          (staged (fun () -> Tsg_baselines.Karp.cycle_time g)))
      rings
  @ List.map
      (fun (s, g) ->
        Test.make ~name:(Printf.sprintf "E10/howard-ring%d" s)
          (staged (fun () -> Tsg_baselines.Howard.cycle_time g)))
      rings
  @ List.map
      (fun (s, g) ->
        Test.make ~name:(Printf.sprintf "E10/lawler-ring%d" s)
          (staged (fun () -> Tsg_baselines.Lawler.cycle_time g)))
      rings
  @ List.map
      (fun (c, g) ->
        Test.make ~name:(Printf.sprintf "E10/tsa-handshake%d" c)
          (staged (fun () -> Cycle_time.cycle_time g)))
      hrings
  @ [
      Test.make ~name:"E10/exhaustive-K6"
        (staged (fun () -> Tsg_baselines.Exhaustive.cycle_time k6));
      Test.make ~name:"E10/tsa-K6" (staged (fun () -> Cycle_time.cycle_time k6));
      Test.make ~name:"E11/analyze-ring12-2tok"
        (staged (fun () -> Cycle_time.analyze ring12_2));
      Test.make ~name:"E12/extract-fig1"
        (staged (fun () -> Tsg_extract.Traspec.extract ~check:false fig1_netlist));
      (let stack_eps = Cycles.max_occurrence_period stack66 in
       Test.make ~name:"A1/stack66-eps-periods"
         (staged (fun () -> Cycle_time.cycle_time ~periods:stack_eps stack66)));
      Test.make ~name:"A1/stack66-b-periods"
        (staged (fun () -> Cycle_time.cycle_time stack66));
      Test.make ~name:"A2/slack-sweep-fig1" (staged (fun () -> Slack.analyze fig1));
      Test.make ~name:"A2/slack-sweep-ring5" (staged (fun () -> Slack.analyze ring5));
      Test.make ~name:"A3/interval-ring5"
        (staged (fun () -> Interval.of_relative_tolerance ring5 ~percent:10.));
      Test.make ~name:"A3/montecarlo-ring5"
        (staged (fun () ->
             Monte_carlo.estimate ~runs:3 ~periods:30 ring5
               ~sampler:(Monte_carlo.uniform_jitter ring5 ~percent:10.)));
      (* jobs = the host's recommended domain count, not a hardcoded 4:
         on a smaller machine a fixed 4 would oversubscribe and measure
         scheduling noise instead of the parallel kernel *)
      (let jobs = Tsg_engine.Pool.recommended () in
       Test.make
         ~name:(Printf.sprintf "parallel/stack66-jobs%d" jobs)
         (staged (fun () -> Cycle_time.analyze ~jobs stack66)));
    ]

let run_benchmarks ~quota_s =
  section "BENCH" "Bechamel micro-benchmarks (one per experiment)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None () in
  Fmt.pr "%-28s %16s %10s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance raw in
          let time_ns =
            match Analyze.OLS.estimates est with Some [ t ] -> t | _ -> nan
          in
          let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
          let pretty_time ns =
            if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
            else Printf.sprintf "%.1f ns" ns
          in
          Fmt.pr "%-28s %16s %10.4f@." (Test.Elt.name elt) (pretty_time time_ns) r2)
        (Test.elements test))
    bench_tests

let () =
  let argv = Array.to_list Sys.argv in
  let has flag = List.mem flag argv in
  let tables = (not (has "--bench")) || has "--tables" in
  let bench = (not (has "--tables")) || has "--bench" in
  let quota_s = if has "--quick" then 0.05 else 0.5 in
  if tables then all_tables ();
  if bench then run_benchmarks ~quota_s
