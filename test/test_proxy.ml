(* The proxy tier: the breaker state machine (explicit-clock unit
   tests), retry-budget arithmetic, the degraded-marker algebra, and
   [Proxy.forward] over live in-process TCP shards — fresh and hedged
   byte-identity, budget-exhaustion shedding, degraded stale-serving,
   breaker trip/recovery independent of the router's cooldown, and a
   failpoint-stretched chaos drill that kills the busiest shard
   mid-load and demands zero client-visible failures. *)

open Tsg_engine

let bench = Test_server.bench
let analyze_req = Test_server.analyze_req

(* ------------------------------------------------------------------ *)
(* Breaker: a pure state machine once [now] is explicit                *)

let state_tt =
  Alcotest.testable
    (fun ppf s ->
      Fmt.string ppf
        (match s with
        | Proxy.Breaker.Closed -> "closed"
        | Proxy.Breaker.Open -> "open"
        | Proxy.Breaker.Half_open -> "half_open"))
    ( = )

let test_breaker_closed_to_open_to_closed () =
  let b = Proxy.Breaker.create ~window:4 ~failures:2 ~cooldown_ms:1000. () in
  Alcotest.(check state_tt) "starts closed" Proxy.Breaker.Closed
    (Proxy.Breaker.state b ~now:0.);
  Alcotest.(check bool) "closed admits" true (Proxy.Breaker.allow b ~now:0.);
  Alcotest.(check bool) "one failure does not trip" false
    (Proxy.Breaker.record b ~now:0. ~ok:false);
  Alcotest.(check state_tt) "still closed" Proxy.Breaker.Closed
    (Proxy.Breaker.state b ~now:0.);
  Alcotest.(check bool) "second failure trips" true
    (Proxy.Breaker.record b ~now:0. ~ok:false);
  Alcotest.(check state_tt) "open" Proxy.Breaker.Open
    (Proxy.Breaker.state b ~now:0.5);
  Alcotest.(check bool) "open refuses" false (Proxy.Breaker.allow b ~now:0.5);
  (* a late reply from before the trip neither closes nor re-trips *)
  Alcotest.(check bool) "late outcome ignored while open" false
    (Proxy.Breaker.record b ~now:0.5 ~ok:true);
  Alcotest.(check state_tt) "still open after a late reply" Proxy.Breaker.Open
    (Proxy.Breaker.state b ~now:0.5);
  (* cooldown elapses: half-open, exactly one trial *)
  Alcotest.(check state_tt) "half-open after the cooldown" Proxy.Breaker.Half_open
    (Proxy.Breaker.state b ~now:1.0);
  Alcotest.(check bool) "the trial is admitted" true
    (Proxy.Breaker.allow b ~now:1.0);
  Alcotest.(check bool) "only one trial at a time" false
    (Proxy.Breaker.allow b ~now:1.0);
  Alcotest.(check bool) "a successful trial is not a trip" false
    (Proxy.Breaker.record b ~now:1.0 ~ok:true);
  Alcotest.(check state_tt) "closed again" Proxy.Breaker.Closed
    (Proxy.Breaker.state b ~now:1.0);
  (* closing cleared the window: one failure is one failure again *)
  Alcotest.(check bool) "window was reset on close" false
    (Proxy.Breaker.record b ~now:1.0 ~ok:false);
  Alcotest.(check state_tt) "one post-recovery failure stays closed"
    Proxy.Breaker.Closed
    (Proxy.Breaker.state b ~now:1.0)

let test_breaker_failed_trial_reopens () =
  let b = Proxy.Breaker.create ~window:4 ~failures:2 ~cooldown_ms:1000. () in
  ignore (Proxy.Breaker.record b ~now:0. ~ok:false);
  ignore (Proxy.Breaker.record b ~now:0. ~ok:false);
  Alcotest.(check bool) "trial admitted at t=1" true
    (Proxy.Breaker.allow b ~now:1.0);
  Alcotest.(check bool) "the failed trial counts as a trip" true
    (Proxy.Breaker.record b ~now:1.0 ~ok:false);
  Alcotest.(check state_tt) "re-opened" Proxy.Breaker.Open
    (Proxy.Breaker.state b ~now:1.5);
  Alcotest.(check state_tt) "a full new cooldown applies" Proxy.Breaker.Half_open
    (Proxy.Breaker.state b ~now:2.0)

let test_breaker_abort_returns_the_trial_slot () =
  let b = Proxy.Breaker.create ~window:4 ~failures:1 ~cooldown_ms:100. () in
  ignore (Proxy.Breaker.record b ~now:0. ~ok:false);
  Alcotest.(check bool) "trial taken" true (Proxy.Breaker.allow b ~now:0.2);
  Alcotest.(check bool) "slot busy" false (Proxy.Breaker.allow b ~now:0.2);
  (* the would-be trial never reached the wire (shard saturated
     locally): the slot goes back, the breaker state is untouched *)
  Proxy.Breaker.abort b;
  Alcotest.(check state_tt) "still half-open after abort" Proxy.Breaker.Half_open
    (Proxy.Breaker.state b ~now:0.2);
  Alcotest.(check bool) "slot available again" true
    (Proxy.Breaker.allow b ~now:0.2)

(* ------------------------------------------------------------------ *)
(* Retry budget                                                        *)

let test_retry_budget_exhausts_and_refills () =
  let rb = Proxy.Retry_budget.create ~ratio:0.5 ~burst:2. () in
  Alcotest.(check (float 1e-9)) "starts full at burst" 2.
    (Proxy.Retry_budget.balance rb);
  Alcotest.(check bool) "first token" true (Proxy.Retry_budget.try_withdraw rb);
  Alcotest.(check bool) "second token" true (Proxy.Retry_budget.try_withdraw rb);
  Alcotest.(check bool) "exhausted: shed, don't retry" false
    (Proxy.Retry_budget.try_withdraw rb);
  Proxy.Retry_budget.deposit rb;
  Proxy.Retry_budget.deposit rb;
  Alcotest.(check (float 1e-9)) "two primaries fund one token" 1.
    (Proxy.Retry_budget.balance rb);
  Alcotest.(check bool) "refunded token spends" true
    (Proxy.Retry_budget.try_withdraw rb);
  for _ = 1 to 100 do
    Proxy.Retry_budget.deposit rb
  done;
  Alcotest.(check (float 1e-9)) "the burst caps the bucket" 2.
    (Proxy.Retry_budget.balance rb)

(* ------------------------------------------------------------------ *)
(* The degraded marker                                                 *)

let test_degraded_marker_round_trips () =
  let payload = {|{"status":"ok","model":"fig1","report":{"cycle_time":10}}|} in
  let marked = Proxy.mark_degraded payload in
  Alcotest.(check string) "marker spliced first"
    ({|{"degraded":true,"status":"ok","model":"fig1","report":{"cycle_time":10}}|})
    marked;
  Alcotest.(check (option string)) "strip inverts mark exactly" (Some payload)
    (Proxy.strip_degraded marked);
  Alcotest.(check (option string)) "unmarked lines strip to None" None
    (Proxy.strip_degraded payload);
  Alcotest.(check (option string)) "empty object round-trips" (Some "{}")
    (Proxy.strip_degraded (Proxy.mark_degraded "{}"));
  Alcotest.(check string) "non-object payloads pass through unmarked" "plain"
    (Proxy.mark_degraded "plain")

(* ------------------------------------------------------------------ *)
(* Live in-process shards                                              *)

(* a TCP shard serving the test handler, optionally slowed and
   optionally pinned to a port (for restart drills) *)
let start_shard ?(delay_s = 0.) ?(port = 0) () =
  let cache = Cache.create ~metrics_prefix:"test-proxy-shard" ~capacity:32 () in
  let base = Test_server.make_handler cache in
  let handler line =
    if delay_s > 0. then Thread.delay delay_s;
    base line
  in
  let bound = ref None in
  let thread =
    Thread.create
      (fun () ->
        Server.serve
          ~on_ready:(fun ep -> bound := Some ep)
          ~endpoint:(Server.Tcp { host = "127.0.0.1"; port })
          ~handler ())
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while !bound = None && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  match !bound with
  | None -> Alcotest.fail "shard never became ready"
  | Some ep -> (thread, ep)

let stop_shard (thread, ep) =
  (try ignore (Server.call ~endpoint:ep [ {|{"op":"shutdown"}|} ])
   with Unix.Unix_error _ | Failure _ -> ());
  Thread.join thread

let with_shards ?delay_s n f =
  let shards = List.init n (fun _ -> start_shard ?delay_s ()) in
  Fun.protect ~finally:(fun () -> List.iter stop_shard shards) (fun () -> f shards)

let with_router eps f =
  let router = Router.create ~retries:0 eps in
  Fun.protect ~finally:(fun () -> Router.close router) (fun () -> f router)

let fresh_or_fail = function
  | Proxy.Fresh r -> r
  | Proxy.Degraded _ -> Alcotest.fail "unexpected degraded answer"
  | Proxy.Shed (code, msg) -> Alcotest.failf "shed (%s): %s" code msg
  | Proxy.Failed msg -> Alcotest.failf "failed: %s" msg

let test_forward_matches_direct_call () =
  with_shards 3 @@ fun shards ->
  let eps = List.map snd shards in
  with_router eps @@ fun router ->
  let p = Proxy.create ~hedging:Proxy.Off router in
  let req = analyze_req (bench "fig1.g") in
  let key = "fig1-digest" in
  let via_proxy =
    fresh_or_fail (Proxy.forward p ~key ~idempotent:true req)
  in
  let home_ep = List.nth eps (Router.home router key) in
  (match Server.call ~endpoint:home_ep [ req ] with
  | [ direct ] ->
    Alcotest.(check string) "proxy adds nothing to the bytes" direct via_proxy
  | _ -> Alcotest.fail "expected one direct response");
  let s = Proxy.stats p in
  Alcotest.(check int) "one request" 1 s.Proxy.requests;
  Alcotest.(check int) "no retries in a healthy fleet" 0 s.Proxy.retries;
  Alcotest.(check (list string)) "all breakers closed"
    [ "closed"; "closed"; "closed" ] s.Proxy.breakers

let test_hedge_winner_byte_identity () =
  (* every shard is slow, so the fixed 5 ms hedge always fires; the
     answer must be the same bytes whichever attempt wins *)
  with_shards ~delay_s:0.08 2 @@ fun shards ->
  let eps = List.map snd shards in
  with_router eps @@ fun router ->
  let req = analyze_req (bench "ring5.g") in
  let key = "ring5-digest" in
  let unhedged = Proxy.create ~hedging:Proxy.Off router in
  let expected =
    fresh_or_fail (Proxy.forward unhedged ~key ~idempotent:true req)
  in
  let hedged = Proxy.create ~hedging:(Proxy.Fixed_ms 5.) router in
  let got = fresh_or_fail (Proxy.forward hedged ~key ~idempotent:true req) in
  Alcotest.(check string) "hedged response byte-identical to unhedged" expected
    got;
  let s = Proxy.stats hedged in
  Alcotest.(check int) "the hedge fired" 1 s.Proxy.hedges;
  (* a non-idempotent request through the same proxy never hedges *)
  ignore (fresh_or_fail (Proxy.forward hedged ~key ~idempotent:false req));
  Alcotest.(check int) "non-idempotent requests are not hedged" 1
    (Proxy.stats hedged).Proxy.hedges

let test_retry_budget_exhaustion_sheds () =
  with_shards 3 @@ fun shards ->
  let eps = List.map snd shards in
  List.iter stop_shard shards;
  with_router eps @@ fun router ->
  (* ratio 0, burst 1: the first attempt is free, the first retry
     spends the only token, the second retry must shed *)
  let p =
    Proxy.create ~hedging:Proxy.Off ~retry_ratio:0. ~retry_burst:1. router
  in
  (match Proxy.forward p ~key:"k" ~idempotent:false (analyze_req (bench "fig1.g")) with
  | Proxy.Shed (code, msg) ->
    Alcotest.(check string) "shed as overloaded" "overloaded" code;
    Alcotest.(check bool) "the message names the budget" true
      (String.length msg > 0)
  | Proxy.Fresh _ -> Alcotest.fail "a dead fleet cannot answer fresh"
  | Proxy.Degraded _ -> Alcotest.fail "no stale cache was configured"
  | Proxy.Failed msg ->
    Alcotest.failf "budget should have shed before failing: %s" msg);
  let s = Proxy.stats p in
  Alcotest.(check int) "one shed" 1 s.Proxy.shed;
  Alcotest.(check int) "one budgeted retry happened first" 1 s.Proxy.retries

let test_degraded_stale_serving () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsa-test-proxy-dc-%d" (Unix.getpid ()))
  in
  (try
     Array.iter
       (fun f -> try Unix.unlink (Filename.concat dir f) with Unix.Unix_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  let dc = Disk_cache.create ~metrics_prefix:"test-proxy-dc" ~dir () in
  Fun.protect ~finally:(fun () -> Disk_cache.close dc) @@ fun () ->
  let payload = {|{"status":"ok","model":"fig1","report":{"cycle_time":10}}|} in
  Disk_cache.add dc "ck" payload;
  Disk_cache.flush dc;
  with_shards 1 @@ fun shards ->
  let eps = List.map snd shards in
  List.iter stop_shard shards;
  with_router eps @@ fun router ->
  let p = Proxy.create ~hedging:Proxy.Off ~stale:dc router in
  (match Proxy.forward p ~key:"k" ~cache_key:"ck" ~idempotent:true "req" with
  | Proxy.Degraded (served, age) ->
    Alcotest.(check string) "stale bytes are the original bytes" payload served;
    Alcotest.(check bool) "age is non-negative" true (age >= 0.);
    (* the wire form round-trips back to the cached original *)
    Alcotest.(check (option string)) "marked line strips to the original"
      (Some payload)
      (Proxy.strip_degraded (Proxy.mark_degraded served))
  | _ -> Alcotest.fail "expected a degraded answer from the stale cache");
  (* a key the cache never held fails instead *)
  (match Proxy.forward p ~key:"k" ~cache_key:"absent" ~idempotent:true "req" with
  | Proxy.Failed _ -> ()
  | _ -> Alcotest.fail "an absent cache entry cannot be served");
  let s = Proxy.stats p in
  Alcotest.(check int) "one degraded serve" 1 s.Proxy.degraded;
  Alcotest.(check int) "one degraded miss" 1 s.Proxy.degraded_miss

let test_breaker_trips_and_recovers_through_forward () =
  with_shards 1 @@ fun shards ->
  let eps = List.map snd shards in
  let port =
    match List.hd eps with
    | Server.Tcp { port; _ } -> port
    | _ -> Alcotest.fail "expected a TCP endpoint"
  in
  List.iter stop_shard shards;
  (* cooldown_s 60: within this test the router's own passive health
     cooldown never re-admits the shard — any recovery below is the
     breaker's half-open trial, proving the two mechanisms are
     independent *)
  let router = Router.create ~retries:0 ~cooldown_s:60. eps in
  Fun.protect ~finally:(fun () -> Router.close router) @@ fun () ->
  let p =
    Proxy.create ~hedging:Proxy.Off ~breaker_window:4 ~breaker_failures:2
      ~breaker_cooldown_ms:100. router
  in
  let req = analyze_req (bench "fig1.g") in
  let forward () = Proxy.forward p ~key:"k" ~idempotent:true req in
  (match forward () with Proxy.Failed _ -> () | _ -> Alcotest.fail "dead shard");
  (match forward () with Proxy.Failed _ -> () | _ -> Alcotest.fail "dead shard");
  let s = Proxy.stats p in
  Alcotest.(check int) "two failures tripped the breaker" 1 s.Proxy.breaker_trips;
  Alcotest.(check (list string)) "breaker open" [ "open" ] s.Proxy.breakers;
  (* while open, no connection is even attempted *)
  (match forward () with
  | Proxy.Failed msg ->
    Alcotest.(check bool) "the error names the breakers" true
      (String.length msg > 0 && String.sub msg 0 8 = "no shard")
  | _ -> Alcotest.fail "an open breaker cannot serve");
  (* the shard comes back on its port; after the cooldown the breaker
     admits one trial and a success closes it — even though the
     router still considers the shard unhealthy *)
  let revived = start_shard ~port () in
  Fun.protect ~finally:(fun () -> stop_shard revived) @@ fun () ->
  Thread.delay 0.15;
  (match forward () with
  | Proxy.Fresh _ -> ()
  | _ -> Alcotest.fail "the half-open trial should have succeeded");
  Alcotest.(check (list string)) "breaker closed after the trial" [ "closed" ]
    (Proxy.stats p).Proxy.breakers

let test_chaos_kill_busiest_shard_under_load () =
  (* the in-test chaos drill: mixed load through the proxy, the
     busiest shard stops mid-run, and not one request may fail.  The
     server/request failpoint stretches every shard's handler so the
     kill lands among in-flight requests rather than between them. *)
  with_shards 3 @@ fun shards ->
  let eps = List.map snd shards in
  with_router eps @@ fun router ->
  let p = Proxy.create ~hedging:Proxy.Off router in
  let models = [| "fig1.g"; "ring5.g"; "stack66.g" |] in
  let keys = Array.map (fun m -> "digest-" ^ m) models in
  let expected =
    Array.mapi
      (fun i m ->
        fresh_or_fail
          (Proxy.forward p ~key:keys.(i) ~idempotent:true (analyze_req (bench m))))
      models
  in
  (* the busiest shard is the home of the most keys *)
  let counts = Array.make 3 0 in
  Array.iter
    (fun key ->
      let h = Router.home router key in
      counts.(h) <- counts.(h) + 1)
    keys;
  let busiest = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!busiest) then busiest := i) counts;
  let n_requests = 48 in
  let idx = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let mismatches = Atomic.make 0 in
  (* delay-only injection: stretch every handler so the kill lands on
     in-flight requests (fail:false — the requests must still succeed) *)
  Tsg_obs.Failpoint.activate ~delay_ms:2. ~fail:false "server/request";
  Fun.protect
    ~finally:(fun () -> Tsg_obs.Failpoint.deactivate "server/request")
  @@ fun () ->
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add idx 1 in
      if i < n_requests then begin
        let m = i mod Array.length models in
        (match
           Proxy.forward p ~key:keys.(m) ~idempotent:true
             (analyze_req (bench models.(m)))
         with
        | Proxy.Fresh r | Proxy.Degraded (r, _) ->
          if r <> expected.(m) then Atomic.incr mismatches
        | Proxy.Shed _ | Proxy.Failed _ -> Atomic.incr failures);
        loop ()
      end
    in
    loop ()
  in
  let killer () =
    (* wait until the load is demonstrably in flight, then kill *)
    while Atomic.get idx < n_requests / 3 do
      Thread.delay 0.002
    done;
    stop_shard (List.nth shards !busiest)
  in
  let kt = Thread.create killer () in
  let threads = List.init 4 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  Thread.join kt;
  Alcotest.(check int) "zero client-visible failures" 0 (Atomic.get failures);
  Alcotest.(check int) "every answer byte-identical to the healthy baseline" 0
    (Atomic.get mismatches);
  let s = Proxy.stats p in
  Alcotest.(check int) "every request accounted for" (n_requests + 3)
    s.Proxy.requests

let suite =
  [
    Alcotest.test_case "breaker: closed -> open -> half-open -> closed" `Quick
      test_breaker_closed_to_open_to_closed;
    Alcotest.test_case "breaker: failed trial re-opens" `Quick
      test_breaker_failed_trial_reopens;
    Alcotest.test_case "breaker: abort returns the trial slot" `Quick
      test_breaker_abort_returns_the_trial_slot;
    Alcotest.test_case "retry budget exhausts and refills" `Quick
      test_retry_budget_exhausts_and_refills;
    Alcotest.test_case "degraded marker round-trips" `Quick
      test_degraded_marker_round_trips;
    Alcotest.test_case "forward matches a direct call byte-for-byte" `Quick
      test_forward_matches_direct_call;
    Alcotest.test_case "hedge winner is byte-identical" `Quick
      test_hedge_winner_byte_identity;
    Alcotest.test_case "exhausted retry budget sheds" `Quick
      test_retry_budget_exhaustion_sheds;
    Alcotest.test_case "degraded stale-serve round-trip" `Quick
      test_degraded_stale_serving;
    Alcotest.test_case "breaker trips and recovers through forward" `Quick
      test_breaker_trips_and_recovers_through_forward;
    Alcotest.test_case "chaos: busiest shard dies under load" `Quick
      test_chaos_kill_busiest_shard_under_load;
  ]
