(* Integration tests of the tsa serve daemon: a real Unix-domain
   socket, a handler wired exactly like bin/tsa.ml's, concurrent
   clients, malformed input, and cache behaviour observed through
   Metrics. *)

open Tsg
open Tsg_engine

let benchmarks_dir = try Sys.getenv "BENCHMARKS" with Not_found -> "../benchmarks"
let bench file = Filename.concat benchmarks_dir file

(* these tests drive the Unix transport; TCP has its own cases below
   and in test_router.ml *)
let call ?retries ?backoff_ms ~socket requests =
  Server.call ?retries ?backoff_ms ~endpoint:(Server.Unix_socket socket) requests

(* the same composition as `tsa serve`: loader -> digest -> cache ->
   analysis -> Rpc encoders *)
let make_handler cache =
  let analyze_cached path =
    match Tsg_io.Loader.load_file path with
    | Error msg -> Error msg
    | Ok m ->
      let g = m.Tsg_io.Loader.graph in
      let key = Signal_graph.digest g in
      Cache.find_or_add cache key (fun () ->
          match Cycle_time.analyze g with
          | report -> Ok (m.Tsg_io.Loader.name, g, report)
          | exception Cycle_time.Not_analyzable msg -> Error msg)
  in
  fun line ->
    match Protocol.parse_request line with
    | Error msg -> Server.Reply (Tsg_io.Rpc.error_response msg)
    | Ok (Protocol.Analyze { path; _ }) ->
      Server.Reply
        (match analyze_cached path with
        | Ok (name, g, report) -> Tsg_io.Rpc.analyze_response ~model:name g report
        | Error msg -> Tsg_io.Rpc.error_response msg)
    | Ok (Protocol.Batch { paths; _ }) ->
      let entries = Batch.run ~jobs:2 ~label:Fun.id ~f:analyze_cached paths in
      Server.Reply (Tsg_io.Rpc.batch_response entries)
    | Ok (Protocol.Sweep { path; scenarios; _ }) ->
      Server.Reply
        (match Tsg_io.Loader.load_file path with
        | Error msg -> Tsg_io.Rpc.error_response msg
        | Ok m -> (
          let g = m.Tsg_io.Loader.graph in
          match Whatif.prepare g with
          | exception Cycle_time.Not_analyzable msg -> Tsg_io.Rpc.error_response msg
          | base ->
            let change = function
              | Protocol.Sw_delay { sw_arc; sw_delta } ->
                Whatif.Delay { arc = sw_arc; delta = sw_delta }
              | Protocol.Sw_add { sw_src; sw_dst; sw_delay; sw_marked } ->
                let ev = function
                  | Protocol.Ev_id i -> i
                  | Protocol.Ev_name _ -> Alcotest.fail "test handler resolves ids only"
                in
                Whatif.Add_arc
                  { src = ev sw_src; dst = ev sw_dst; delay = sw_delay; marked = sw_marked }
              | Protocol.Sw_remove arc -> Whatif.Remove_arc arc
              | Protocol.Sw_mark { sw_arc; sw_marked } ->
                Whatif.Set_marked { arc = sw_arc; marked = sw_marked }
            in
            let scens = Array.of_list scenarios in
            let results =
              Whatif.sweep_changes ~jobs:2 base (Array.map (List.map change) scens)
            in
            let items =
              Array.to_list
                (Array.mapi
                   (fun i outcome ->
                     { Tsg_io.Rpc.edits = scens.(i); elapsed_ms = 0.; outcome })
                   results)
            in
            Tsg_io.Rpc.sweep_response ~model:m.Tsg_io.Loader.name g items))
    | Ok Protocol.Stats ->
      Server.Reply (Tsg_io.Rpc.stats_response ~cache:(Cache.stats cache) ())
    | Ok Protocol.Shutdown -> Server.Final (Tsg_io.Rpc.shutdown_response ())

let socket_counter = ref 0

let with_server f =
  incr socket_counter;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsa-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)
  in
  let cache = Cache.create ~metrics_prefix:"test-server" ~capacity:32 () in
  let server =
    Thread.create
      (fun () ->
        Server.serve ~endpoint:(Server.Unix_socket socket) ~handler:(make_handler cache) ())
      ()
  in
  (* wait for the daemon to bind *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check bool) "server socket appeared" true (Sys.file_exists socket);
  Fun.protect
    ~finally:(fun () ->
      (* stop the daemon if the test body has not already done so *)
      (try ignore (call ~socket [ {|{"op":"shutdown"}|} ])
       with Unix.Unix_error _ | Failure _ -> ());
      Thread.join server)
    (fun () -> f ~socket ~cache)

(* response inspection through the protocol's own JSON parser *)
let parse_response line =
  match Protocol.json_of_string line with
  | Ok j -> j
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let status j =
  match Protocol.member "status" j with
  | Some (Protocol.String s) -> s
  | _ -> Alcotest.fail "response without a status field"

let number_at path j =
  let rec go j = function
    | [] -> ( match j with Protocol.Number f -> f | _ -> Alcotest.fail "not a number")
    | k :: rest -> (
      match Protocol.member k j with
      | Some v -> go v rest
      | None -> Alcotest.failf "missing field %S" k)
  in
  go j path

let string_at path j =
  let rec go j = function
    | [] -> ( match j with Protocol.String s -> s | _ -> Alcotest.fail "not a string")
    | k :: rest -> (
      match Protocol.member k j with
      | Some v -> go v rest
      | None -> Alcotest.failf "missing field %S" k)
  in
  go j path

let analyze_req path =
  Protocol.request_to_string
    (Protocol.Analyze { path; periods = None; timeout_ms = None })

let sweep_req path scenarios =
  Protocol.request_to_string
    (Protocol.Sweep
       {
         path;
         scenarios =
           List.map
             (List.map (fun (arc, delta) ->
                  Protocol.Sw_delay { sw_arc = arc; sw_delta = delta }))
             scenarios;
         periods = None;
         jobs = Some 2;
         timeout_ms = None;
       })

(* ------------------------------------------------------------------ *)

let test_round_trip () =
  with_server @@ fun ~socket ~cache:_ ->
  match call ~socket [ analyze_req (bench "fig1.g"); analyze_req (bench "ring5.g") ] with
  | [ fig1; ring5 ] ->
    let fig1 = parse_response fig1 and ring5 = parse_response ring5 in
    Alcotest.(check string) "fig1 ok" "ok" (status fig1);
    Helpers.check_float "fig1 cycle time" 10. (number_at [ "report"; "cycle_time" ] fig1);
    Helpers.check_float "ring5 cycle time" (20. /. 3.)
      (number_at [ "report"; "cycle_time" ] ring5)
  | other -> Alcotest.failf "expected two responses, got %d" (List.length other)

let test_malformed_request_is_isolated () =
  with_server @@ fun ~socket ~cache:_ ->
  let requests =
    [
      "this is not json";
      {|{"op":"frobnicate"}|};
      {|{"op":"analyze"}|};
      {|{"op":"analyze","path":"no_such_file.g"}|};
      analyze_req (bench "fig1.g");
    ]
  in
  let responses = List.map parse_response (call ~socket requests) in
  (match responses with
  | [ bad_json; bad_op; no_path; no_file; good ] ->
    List.iter
      (fun r -> Alcotest.(check string) "error status" "error" (status r))
      [ bad_json; bad_op; no_path; no_file ];
    (* the connection survived four errors and still answers *)
    Alcotest.(check string) "subsequent request served" "ok" (status good)
  | _ -> Alcotest.fail "expected five responses");
  ()

let test_second_request_is_a_cache_hit () =
  with_server @@ fun ~socket ~cache ->
  let req = analyze_req (bench "stack66.g") in
  let first =
    match call ~socket [ req ] with [ r ] -> r | _ -> Alcotest.fail "one response"
  in
  let sims_after_first = Metrics.count "simulations/initiated" in
  let analyzed_after_first = Metrics.count "analyze/graphs" in
  let second =
    match call ~socket [ req ] with [ r ] -> r | _ -> Alcotest.fail "one response"
  in
  Alcotest.(check string) "byte-identical response on the cache hit" first second;
  Alcotest.(check int)
    "no second simulation" sims_after_first
    (Metrics.count "simulations/initiated");
  Alcotest.(check int)
    "no second analysis" analyzed_after_first
    (Metrics.count "analyze/graphs");
  let s = Cache.stats cache in
  Alcotest.(check bool) "a hit was recorded" true (s.Cache.hits >= 1);
  Alcotest.(check string) "first response was ok" "ok" (status (parse_response first))

let test_concurrent_clients () =
  with_server @@ fun ~socket ~cache:_ ->
  let files = [ "fig1.g"; "ring5.g"; "fifo2.g"; "fork_join.g" ] in
  let expected = [ 10.; 20. /. 3.; 5.; 7. ] in
  let results = Array.make (List.length files) None in
  let clients =
    List.mapi
      (fun i file ->
        Thread.create
          (fun () ->
            (* every client hammers its file a few times on one connection *)
            let reqs = List.init 3 (fun _ -> analyze_req (bench file)) in
            match call ~socket reqs with
            | responses -> results.(i) <- Some responses
            | exception exn -> results.(i) <- Some [ Printexc.to_string exn ])
          ())
      files
  in
  List.iter Thread.join clients;
  List.iteri
    (fun i lambda ->
      match results.(i) with
      | Some (first :: rest) ->
        let j = parse_response first in
        Alcotest.(check string) "ok" "ok" (status j);
        Helpers.check_float "cycle time" lambda (number_at [ "report"; "cycle_time" ] j);
        List.iter
          (fun r -> Alcotest.(check string) "identical across the connection" first r)
          rest
      | _ -> Alcotest.failf "client %d got no responses" i)
    expected

let test_batch_and_stats () =
  with_server @@ fun ~socket ~cache:_ ->
  let batch =
    Protocol.request_to_string
      (Protocol.Batch
         {
           paths = [ bench "fig1.g"; "no_such_file.g"; bench "fig1.g" ];
           periods = None;
           jobs = Some 2;
           timeout_ms = None;
         })
  in
  match call ~socket [ batch; {|{"op":"stats"}|} ] with
  | [ batch_resp; stats_resp ] ->
    let b = parse_response batch_resp in
    Alcotest.(check string) "batch ok" "ok" (status b);
    Helpers.check_float "three items" 3. (number_at [ "summary"; "total" ] b);
    Helpers.check_float "one failure" 1. (number_at [ "summary"; "failed" ] b);
    let s = parse_response stats_resp in
    Alcotest.(check string) "stats ok" "ok" (status s);
    (* the duplicated fig1.g was served from the cache *)
    Alcotest.(check bool) "cache hits reported" true
      (number_at [ "cache"; "hits" ] s >= 1.);
    (match Protocol.member "metrics" s with
    | Some (Protocol.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "stats response carries a metrics snapshot")
  | other -> Alcotest.failf "expected two responses, got %d" (List.length other)

let test_stats_reports_latency_percentiles () =
  with_server @@ fun ~socket ~cache:_ ->
  (* several requests first, so the daemon has a latency distribution
     to report *)
  let n = 5 in
  let reqs = List.init n (fun _ -> analyze_req (bench "fig1.g")) in
  ignore (call ~socket reqs);
  match call ~socket [ {|{"op":"stats"}|} ] with
  | [ stats_resp ] -> (
    let s = parse_response stats_resp in
    Alcotest.(check string) "stats ok" "ok" (status s);
    let entries =
      match Protocol.member "latency" s with
      | Some (Protocol.List l) -> l
      | _ -> Alcotest.fail "stats response carries a latency block"
    in
    match
      List.find_opt
        (fun e ->
          Protocol.member "name" e = Some (Protocol.String "server/request_ms"))
        entries
    with
    | None -> Alcotest.fail "no server/request_ms histogram in stats"
    | Some e ->
      Alcotest.(check bool) "every request was measured" true
        (number_at [ "count" ] e >= float_of_int n);
      let p50 = number_at [ "p50_ms" ] e
      and p95 = number_at [ "p95_ms" ] e
      and p99 = number_at [ "p99_ms" ] e
      and max_ms = number_at [ "max_ms" ] e in
      Alcotest.(check bool) "percentiles are monotone" true
        (p50 <= p95 && p95 <= p99 && p99 <= max_ms);
      Alcotest.(check bool) "latencies are positive" true (p50 > 0.))
  | other -> Alcotest.failf "expected one response, got %d" (List.length other)

let test_sweep_round_trip () =
  with_server @@ fun ~socket ~cache:_ ->
  (* four scenarios: a real edit, a joint edit, a zero-delta no-op and
     a bad arc id — plus a plain analyze of the same model to compare
     the short-circuited item against *)
  let sweep =
    sweep_req (bench "stack66.g")
      [ [ (0, 1.5) ]; [ (1, 0.5); (2, 0.25) ]; [ (0, 0.) ]; [ (-7, 1.) ] ]
  in
  match call ~socket [ sweep; analyze_req (bench "stack66.g") ] with
  | [ sweep_resp; analyze_resp ] ->
    let s = parse_response sweep_resp and a = parse_response analyze_resp in
    Alcotest.(check string) "sweep ok" "ok" (status s);
    Helpers.check_float "four scenarios" 4. (number_at [ "summary"; "total" ] s);
    Helpers.check_float "bad arc isolated" 1. (number_at [ "summary"; "failed" ] s);
    let items =
      match Protocol.member "items" s with
      | Some (Protocol.List l) -> Array.of_list l
      | _ -> Alcotest.fail "sweep response carries items"
    in
    Alcotest.(check int) "one item per scenario" 4 (Array.length items);
    Alcotest.(check string) "edit ran warm" "warm" (string_at [ "path" ] items.(0));
    Alcotest.(check string) "joint edit ran warm" "warm" (string_at [ "path" ] items.(1));
    Alcotest.(check string)
      "zero-delta short-circuits" "short_circuit"
      (string_at [ "path" ] items.(2));
    Helpers.check_float "short circuit returns the base analysis"
      (number_at [ "report"; "cycle_time" ] a)
      (number_at [ "report"; "cycle_time" ] items.(2));
    Alcotest.(check string) "bad arc is an error item" "error" (status items.(3))
  | other -> Alcotest.failf "expected two responses, got %d" (List.length other)

let test_structural_sweep_round_trip () =
  with_server @@ fun ~socket ~cache:_ ->
  (* remove arc 0 and add an identical arc back: a genuinely structural
     scenario whose answer must equal the base analysis — but arrive
     via the warm structural path, not a short-circuit (the arc ids
     permute).  The marking no-op scenario IS a literal no-op and must
     short-circuit.  Old-style delay edits ride in the same request:
     tsa-rpc/3 clients keep working against the tsa-rpc/4 daemon. *)
  let path = bench "stack66.g" in
  let a0 =
    match Tsg_io.Loader.load_file path with
    | Ok m -> (Tsg.Signal_graph.arcs m.Tsg_io.Loader.graph).(0)
    | Error msg -> Alcotest.failf "cannot load %s: %s" path msg
  in
  let sweep =
    Protocol.request_to_string
      (Protocol.Sweep
         {
           path;
           scenarios =
             [
               [
                 Protocol.Sw_remove 0;
                 Protocol.Sw_add
                   {
                     sw_src = Protocol.Ev_id a0.Tsg.Signal_graph.arc_src;
                     sw_dst = Protocol.Ev_id a0.Tsg.Signal_graph.arc_dst;
                     sw_delay = a0.Tsg.Signal_graph.delay;
                     sw_marked = a0.Tsg.Signal_graph.marked;
                   };
               ];
               [ Protocol.Sw_mark { sw_arc = 0; sw_marked = a0.Tsg.Signal_graph.marked } ];
               [ Protocol.Sw_delay { sw_arc = 0; sw_delta = 1.5 } ];
             ];
           periods = None;
           jobs = Some 2;
           timeout_ms = None;
         })
  in
  match call ~socket [ sweep; analyze_req path ] with
  | [ sweep_resp; analyze_resp ] ->
    let s = parse_response sweep_resp and a = parse_response analyze_resp in
    Alcotest.(check string) "sweep ok" "ok" (status s);
    Helpers.check_float "three scenarios" 3. (number_at [ "summary"; "total" ] s);
    Helpers.check_float "none failed" 0. (number_at [ "summary"; "failed" ] s);
    let items =
      match Protocol.member "items" s with
      | Some (Protocol.List l) -> Array.of_list l
      | _ -> Alcotest.fail "sweep response carries items"
    in
    Alcotest.(check string) "remove+re-add ran warm" "warm"
      (string_at [ "path" ] items.(0));
    Helpers.check_float "remove+re-add keeps the cycle time"
      (number_at [ "report"; "cycle_time" ] a)
      (number_at [ "report"; "cycle_time" ] items.(0));
    Alcotest.(check string) "marking no-op short-circuits" "short_circuit"
      (string_at [ "path" ] items.(1));
    Alcotest.(check string) "delay edit still served" "warm"
      (string_at [ "path" ] items.(2))
  | other -> Alcotest.failf "expected two responses, got %d" (List.length other)

let test_shutdown_removes_socket () =
  with_server @@ fun ~socket ~cache:_ ->
  (match call ~socket [ {|{"op":"shutdown"}|} ] with
  | [ resp ] -> Alcotest.(check string) "shutdown acknowledged" "ok" (status (parse_response resp))
  | _ -> Alcotest.fail "expected one response");
  (* the daemon unlinks its socket on the way out *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Sys.file_exists socket && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)

let test_tcp_round_trip_matches_unix () =
  (* the same request over both transports must serve byte-identical
     responses: the transport frames bytes, it never renders them *)
  let req = analyze_req (bench "fig1.g") in
  let unix_resp =
    with_server @@ fun ~socket ~cache:_ ->
    match call ~socket [ req ] with [ r ] -> r | _ -> Alcotest.fail "one response"
  in
  let cache = Cache.create ~metrics_prefix:"test-server-tcp" ~capacity:32 () in
  let bound = ref None in
  let server =
    Thread.create
      (fun () ->
        Server.serve
          ~on_ready:(fun ep -> bound := Some ep)
          ~endpoint:(Server.Tcp { host = "127.0.0.1"; port = 0 })
          ~handler:(make_handler cache) ())
      ()
  in
  (* port 0 means the kernel picks; on_ready reports the real endpoint *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while !bound = None && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  match !bound with
  | None -> Alcotest.fail "TCP server never became ready"
  | Some ep ->
    Fun.protect
      ~finally:(fun () ->
        (try ignore (Server.call ~endpoint:ep [ {|{"op":"shutdown"}|} ])
         with Unix.Unix_error _ | Failure _ -> ());
        Thread.join server)
      (fun () ->
        (match ep with
        | Server.Tcp { port; _ } ->
          Alcotest.(check bool) "kernel assigned a real port" true (port > 0)
        | Server.Unix_socket _ -> Alcotest.fail "expected a TCP endpoint");
        match Server.call ~endpoint:ep [ req; req ] with
        | [ first; second ] ->
          Alcotest.(check string) "ok over TCP" "ok" (status (parse_response first));
          Alcotest.(check string) "TCP matches Unix byte-for-byte" unix_resp first;
          Alcotest.(check string) "TCP cache hit is byte-identical" first second
        | other -> Alcotest.failf "expected two responses, got %d" (List.length other))

let suite =
  [
    Alcotest.test_case "analyze round-trip over the socket" `Quick test_round_trip;
    Alcotest.test_case "malformed requests get JSON errors" `Quick
      test_malformed_request_is_isolated;
    Alcotest.test_case "second request is a cache hit" `Quick
      test_second_request_is_a_cache_hit;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "batch request and stats" `Quick test_batch_and_stats;
    Alcotest.test_case "stats reports latency percentiles" `Quick
      test_stats_reports_latency_percentiles;
    Alcotest.test_case "sweep round-trip over the socket" `Quick test_sweep_round_trip;
    Alcotest.test_case "structural sweep round-trip over the socket" `Quick
      test_structural_sweep_round_trip;
    Alcotest.test_case "TCP round-trip matches Unix byte-for-byte" `Quick
      test_tcp_round_trip_matches_unix;
    Alcotest.test_case "shutdown removes the socket" `Quick test_shutdown_removes_socket;
  ]
