(* Resilience tests: deadlines and cooperative cancellation, input
   validation caps, fault injection through Failpoint, daemon
   hardening (oversized / slow / disconnecting / excess clients), and
   fuzzing of the two parsers that face hostile bytes. *)

open Tsg
open Tsg_engine

let benchmarks_dir = try Sys.getenv "BENCHMARKS" with Not_found -> "../benchmarks"
let bench file = Filename.concat benchmarks_dir file

(* every scenario here drives the Unix transport; TCP behaviour is
   covered by test_server.ml and test_router.ml *)
let call ?retries ?backoff_ms ~socket requests =
  Server.call ?retries ?backoff_ms ~endpoint:(Server.Unix_socket socket) requests

let contains hay needle =
  let n = String.length needle and len = String.length hay in
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i + n <= len do
    if String.sub hay !i n = needle then found := true else incr i
  done;
  !found

(* a model big enough that its analysis cannot beat even a generous
   pre-expired budget, small enough to stay fast when run for real *)
let dense_graph () =
  Tsg_circuit.Generators.random_live_tsg ~seed:7 ~events:120 ~extra_arcs:240 ()

(* ------------------------------------------------------------------ *)
(* Deadline unit behaviour                                             *)

let test_deadline_none_never_trips () =
  Alcotest.(check bool) "none is not expired" false (Deadline.expired Deadline.none);
  Deadline.check Deadline.none;
  Alcotest.(check (option (float 0.))) "none has no budget" None
    (Deadline.remaining_ms Deadline.none)

let test_deadline_expires_and_counts_once () =
  let d = Deadline.make ~budget_ms:1. () in
  Unix.sleepf 0.005;
  Alcotest.(check bool) "budget elapsed" true (Deadline.expired d);
  let before = Metrics.count "deadline/cancelled" in
  (match Deadline.check d with
  | () -> Alcotest.fail "check did not raise on an expired deadline"
  | exception Deadline.Deadline_exceeded -> ());
  (match Deadline.check d with
  | () -> Alcotest.fail "second check did not raise"
  | exception Deadline.Deadline_exceeded -> ());
  Alcotest.(check int) "the metric counts a deadline once" (before + 1)
    (Metrics.count "deadline/cancelled")

let test_deadline_cancel () =
  let d = Deadline.make () in
  Alcotest.(check bool) "fresh deadline is live" false (Deadline.expired d);
  Deadline.cancel d;
  Alcotest.(check bool) "cancelled" true (Deadline.cancelled d);
  Alcotest.(check bool) "cancel implies expired" true (Deadline.expired d);
  Alcotest.(check bool) "message says cancelled" true
    (Deadline.error_message d = "deadline_exceeded: analysis cancelled")

let test_ambient_deadline_scoping () =
  let d = Deadline.make ~budget_ms:60_000. () in
  Alcotest.(check bool) "outside: ambient is none" true (Deadline.current () == Deadline.none);
  Deadline.with_deadline d (fun () ->
      Alcotest.(check bool) "inside: ambient is ours" true (Deadline.current () == d));
  Alcotest.(check bool) "restored afterwards" true (Deadline.current () == Deadline.none);
  (* restored even when the body raises *)
  (try
     Deadline.with_deadline d (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after a raise" true
    (Deadline.current () == Deadline.none)

(* the daemon runs every connection handler on a sys-thread of one
   domain: concurrent requests' ambient deadlines must not clobber
   each other (each thread gets its own slot) *)
let test_ambient_deadline_is_per_thread () =
  let barrier = Atomic.make 0 in
  let clobbered = Atomic.make false in
  let worker () =
    let mine = Deadline.make ~budget_ms:60_000. () in
    Deadline.with_deadline mine (fun () ->
        Atomic.incr barrier;
        (* wait until every thread has installed its own deadline *)
        while Atomic.get barrier < 8 do
          Thread.yield ()
        done;
        if not (Deadline.current () == mine) then Atomic.set clobbered true)
  in
  let threads = List.init 8 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  Alcotest.(check bool) "each thread saw its own deadline" false
    (Atomic.get clobbered);
  Alcotest.(check bool) "the main thread's slot is untouched" true
    (Deadline.current () == Deadline.none)

let test_expired_deadline_aborts_analysis () =
  let g = dense_graph () in
  let d = Deadline.make ~budget_ms:0. () in
  Unix.sleepf 0.002;
  (match Cycle_time.analyze ~deadline:d g with
  | _ -> Alcotest.fail "analysis beat an already-expired deadline"
  | exception Deadline.Deadline_exceeded -> ());
  (* the engine is fully reusable after the unwind *)
  let report = Cycle_time.analyze g in
  Alcotest.(check bool) "subsequent analysis succeeds" true
    (Float.is_finite report.Cycle_time.cycle_time && report.Cycle_time.cycle_time > 0.)

let test_deadline_expiry_is_prompt () =
  let g = dense_graph () in
  (* calibrate against this machine: a budget of a tenth of the real
     cost must abort the analysis long before it would have finished *)
  let t0 = Unix.gettimeofday () in
  ignore (Cycle_time.analyze g);
  let full_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let budget_ms = Float.max 1. (full_ms /. 10.) in
  let d = Deadline.make ~budget_ms () in
  let t0 = Unix.gettimeofday () in
  (match Cycle_time.analyze ~deadline:d g with
  | _ -> Alcotest.fail "analysis beat a tenth of its own budget"
  | exception Deadline.Deadline_exceeded -> ());
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let slack_ms = Float.max 25. (full_ms /. 2.) in
  Alcotest.(check bool)
    (Printf.sprintf "cancelled within ~T (budget %.1f ms, full %.1f ms, aborted after %.1f ms)"
       budget_ms full_ms elapsed_ms)
    true
    (elapsed_ms <= budget_ms +. slack_ms)

let test_batch_deadline_is_per_item_and_structured () =
  let g = dense_graph () in
  let analyze_graph _label = Ok (Cycle_time.analyze g).Cycle_time.cycle_time in
  (* a budget too small for a 120-event model: every item times out,
     each with a structured message, and none crashes the sweep *)
  let entries =
    Batch.run ~jobs:2 ~deadline_ms:0.001 ~label:Fun.id ~f:analyze_graph
      [ "a"; "b"; "c" ]
  in
  Alcotest.(check int) "all items reported" 3 (List.length entries);
  List.iter
    (fun (e : _ Batch.entry) ->
      match e.Batch.outcome with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "structured error (%s)" msg)
          true
          (String.length msg >= 17 && String.sub msg 0 17 = "deadline_exceeded")
      | Ok _ -> Alcotest.fail "item beat a pre-expired budget")
    entries;
  (* the pool workers survived the unwinds: the same sweep without a
     budget completes *)
  let entries = Batch.run ~jobs:2 ~label:Fun.id ~f:analyze_graph [ "a"; "b" ] in
  List.iter
    (fun (e : _ Batch.entry) ->
      match e.Batch.outcome with
      | Ok lambda -> Alcotest.(check bool) "finite cycle time" true (Float.is_finite lambda)
      | Error msg -> Alcotest.failf "pool unusable after timeouts: %s" msg)
    entries

(* ------------------------------------------------------------------ *)
(* Input validation                                                    *)

let test_validate_delay () =
  let ok d = match Tsg_io.Validate.delay d with Ok _ -> true | Error _ -> false in
  Alcotest.(check bool) "zero is a delay" true (ok 0.);
  Alcotest.(check bool) "3.5 is a delay" true (ok 3.5);
  Alcotest.(check bool) "nan rejected" false (ok Float.nan);
  Alcotest.(check bool) "negative rejected" false (ok (-1.));
  Alcotest.(check bool) "+inf rejected" false (ok Float.infinity);
  match Tsg_io.Validate.delay Float.nan with
  | Error msg ->
    Alcotest.(check bool) "message names the rule" true
      (contains msg "finite and non-negative")
  | Ok _ -> Alcotest.fail "nan accepted"

let test_validate_caps () =
  (match Tsg_io.Validate.input_text (String.make (Tsg_io.Validate.max_line_bytes + 1) 'a') with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlong line accepted");
  (match Tsg_io.Validate.input_text "a short\ncouple of lines\n" with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "ordinary text rejected: %s" msg);
  (match Tsg_io.Validate.counts ~events:(Tsg_io.Validate.max_events + 1) ~arcs:0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "event cap not enforced");
  (match Tsg_io.Validate.counts ~events:10 ~arcs:(Tsg_io.Validate.max_arcs + 1) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "arc cap not enforced");
  match Tsg_io.Validate.counts ~events:10 ~arcs:20 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "ordinary counts rejected: %s" msg

let test_loaders_share_delay_wording () =
  let expect_shared_error name = function
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names the shared rule (%s)" name msg)
        true
        (contains msg "finite and non-negative")
    | Ok _ -> Alcotest.failf "%s accepted a non-finite delay" name
  in
  expect_shared_error "stg"
    (Result.map ignore
       (Tsg_io.Stg_format.parse ".model m\n.graph\na+ b+ nan token\nb+ a+ 1\n.end\n"));
  expect_shared_error "stg-negative"
    (Result.map ignore
       (Tsg_io.Stg_format.parse ".model m\n.graph\na+ b+ -2 token\nb+ a+ 1\n.end\n"));
  expect_shared_error "net"
    (Result.map ignore
       (Tsg_io.Net_format.parse
          ".netlist n\n.input x init=0\n.node y buf x:inf init=0\n.end\n"));
  expect_shared_error "astg-default-delay"
    (Result.map ignore
       (Tsg_io.Astg_format.parse ~default_delay:Float.nan
          ".model m\n.graph\na+ b+\nb+ a+\n.marking { <a+,b+> }\n.end\n"))

(* ------------------------------------------------------------------ *)
(* Fuzzing: the byte-facing parsers must return, never raise           *)

let valid_request =
  Protocol.request_to_string
    (Protocol.Analyze { path = "m.g"; periods = Some 3; timeout_ms = Some 50. })

let valid_model = ".model m\n.events\na+ initial\n.graph\na+ b+ 2 token\nb+ a+ 3\n.end\n"

(* random mutations of a valid byte string: flips, truncations,
   insertions and duplications — the shapes a broken client or a
   corrupted file actually produce *)
let mutate_gen base =
  QCheck2.Gen.(
    let* n_edits = int_range 1 6 in
    let* seeds = list_size (return (n_edits * 3)) (int_bound 0xFFFFFF) in
    let b = Bytes.of_string base in
    let text = ref (Bytes.to_string b) in
    List.iteri
      (fun i seed ->
        if i mod 3 = 0 then begin
          let s = !text in
          let len = String.length s in
          if len > 0 then
            match seed mod 4 with
            | 0 ->
              (* flip a byte *)
              let b = Bytes.of_string s in
              Bytes.set b (seed / 4 mod len) (Char.chr (seed / 16 mod 256));
              text := Bytes.to_string b
            | 1 -> text := String.sub s 0 (seed / 4 mod (len + 1)) (* truncate *)
            | 2 ->
              (* insert junk *)
              let at = seed / 4 mod (len + 1) in
              text :=
                String.sub s 0 at
                ^ String.make 1 (Char.chr (seed / 16 mod 256))
                ^ String.sub s at (len - at)
            | _ -> text := s ^ s (* duplicate *)
        end)
      seeds;
    return !text)

let fuzz_inputs base =
  QCheck2.Gen.(oneof [ mutate_gen base; string_size ~gen:char (int_range 0 200) ])

let fuzz_case ~name ~base law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:500 ~print:String.escaped (fuzz_inputs base) law)

let fuzz_parse_request =
  fuzz_case ~name:"Protocol.parse_request never raises" ~base:valid_request
    (fun line ->
      match Protocol.parse_request line with Ok _ | Error _ -> true)

let fuzz_loader =
  fuzz_case ~name:"Loader.of_string never raises" ~base:valid_model (fun text ->
      match Tsg_io.Loader.of_string text with Ok _ | Error _ -> true)

let fuzz_deep_nesting () =
  (* not random at all, but the same contract: pathological nesting
     must come back as a parse error, not a stack overflow *)
  let deep = String.make 10_000 '[' ^ String.make 10_000 ']' in
  match Protocol.json_of_string deep with
  | Ok _ -> Alcotest.fail "absurd nesting accepted"
  | Error msg -> Alcotest.(check bool) "depth error" true (contains msg "nesting")

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let with_failpoints f =
  Fun.protect ~finally:Tsg_obs.Failpoint.clear f

let test_pool_survives_worker_death () =
  with_failpoints @@ fun () ->
  let pool = Pool.create ~size:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let xs = Array.init 16 Fun.id in
  Tsg_obs.Failpoint.activate ~times:1 "pool/job";
  let hits_before = Metrics.count "failpoint/hits" in
  (match Pool.map pool (fun x -> x * x) xs with
  | _ -> Alcotest.fail "the injected job failure was swallowed"
  | exception Tsg_obs.Failpoint.Injected "pool/job" -> ());
  Alcotest.(check bool) "failpoint/hits counted" true
    (Metrics.count "failpoint/hits" > hits_before);
  (* one injected death poisoned nothing: the very next map on the
     same pool computes every item *)
  let squares = Pool.map pool (fun x -> x * x) xs in
  Alcotest.(check (array int)) "subsequent map intact"
    (Array.map (fun x -> x * x) xs)
    squares

let test_batch_isolates_injected_loader_failure () =
  with_failpoints @@ fun () ->
  Tsg_obs.Failpoint.activate ~times:1 "loader/load";
  let load path =
    match Tsg_io.Loader.load_file path with
    | Ok m -> Ok m.Tsg_io.Loader.name
    | Error msg -> Error msg
  in
  (* jobs:1 makes the injection land deterministically on the first
     item; the loader converts it to Error, so the sweep continues *)
  let entries =
    Batch.run ~jobs:1 ~label:Fun.id ~f:load [ bench "fig1.g"; bench "ring5.g" ]
  in
  match entries with
  | [ injected; healthy ] ->
    (match injected.Batch.outcome with
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "the injected fault is named (%s)" msg)
        true (contains msg "Injected")
    | Ok _ -> Alcotest.fail "injected loader failure not reported");
    (match healthy.Batch.outcome with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "sibling item infected: %s" msg)
  | other -> Alcotest.failf "expected two entries, got %d" (List.length other)

let test_cache_failpoint_is_isolated_by_server () =
  (* exercised through the daemon below (test_server_requests_survive_
     injection); here just check arming and clearing is symmetric *)
  with_failpoints @@ fun () ->
  Tsg_obs.Failpoint.activate ~times:2 "cache/lookup";
  Alcotest.(check bool) "armed" true (Tsg_obs.Failpoint.is_active "cache/lookup");
  Tsg_obs.Failpoint.deactivate "cache/lookup";
  Alcotest.(check bool) "disarmed" false (Tsg_obs.Failpoint.is_active "cache/lookup")

(* ------------------------------------------------------------------ *)
(* Daemon hardening                                                    *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "tsa-resil-%d-%d.sock" (Unix.getpid ()) !socket_counter)

(* the same composition as tsa serve: loader -> digest -> cache ->
   analysis under the request's deadline -> Rpc encoders *)
let make_handler cache =
  let analyze_cached path =
    match Tsg_io.Loader.load_file path with
    | Error msg -> Error msg
    | Ok m ->
      let g = m.Tsg_io.Loader.graph in
      let key = Signal_graph.digest g in
      Cache.find_or_add cache key (fun () ->
          match Cycle_time.analyze g with
          | report -> Ok (m.Tsg_io.Loader.name, g, report)
          | exception Cycle_time.Not_analyzable msg -> Error msg)
  in
  fun line ->
    match Protocol.parse_request line with
    | Error msg -> Server.Reply (Tsg_io.Rpc.error_response ~code:"bad_request" msg)
    | Ok (Protocol.Analyze { path; timeout_ms; _ }) ->
      Server.Reply
        (let d =
           match timeout_ms with
           | None -> Deadline.none
           | Some ms -> Deadline.make ~budget_ms:ms ()
         in
         match Deadline.with_deadline d (fun () -> analyze_cached path) with
        | Ok (name, g, report) -> Tsg_io.Rpc.analyze_response ~model:name g report
        | Error msg -> Tsg_io.Rpc.error_response msg
        | exception Deadline.Deadline_exceeded ->
          Tsg_io.Rpc.error_response ~code:"deadline_exceeded" (Deadline.error_message d))
    | Ok (Protocol.Batch { paths; timeout_ms; _ }) ->
      let entries =
        Batch.run ~jobs:2 ?deadline_ms:timeout_ms ~label:Fun.id ~f:analyze_cached paths
      in
      Server.Reply (Tsg_io.Rpc.batch_response entries)
    | Ok (Protocol.Sweep _) ->
      (* the hardening scenarios drive analyze/batch only; Whatif has
         its own deadline tests and bin/tsa.ml owns the real handler *)
      Server.Reply
        (Tsg_io.Rpc.error_response ~code:"bad_request"
           "sweep is not wired in this test harness")
    | Ok Protocol.Stats -> Server.Reply (Tsg_io.Rpc.stats_response ~cache:(Cache.stats cache) ())
    | Ok Protocol.Shutdown -> Server.Final (Tsg_io.Rpc.shutdown_response ())

let wait_for p =
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (p ())) && Unix.gettimeofday () < deadline do
    Thread.yield ();
    Unix.sleepf 0.002
  done

let with_hardened_server ?max_connections ?max_request_bytes ?read_timeout_s
    ?write_timeout_s ?stop f =
  let socket = fresh_socket () in
  let cache = Cache.create ~metrics_prefix:"test-resilience" ~capacity:32 () in
  let server =
    Thread.create
      (fun () ->
        Server.serve ?max_connections ?max_request_bytes ?read_timeout_s
          ?write_timeout_s ~drain_timeout_s:2. ?stop
          ~endpoint:(Server.Unix_socket socket) ~handler:(make_handler cache) ())
      ()
  in
  wait_for (fun () -> Sys.file_exists socket);
  Alcotest.(check bool) "server socket appeared" true (Sys.file_exists socket);
  (* a shutdown request can itself be rejected (e.g. the admission
     test's last data connection still counts against the limit while
     its thread winds down) — keep asking until the daemon goes *)
  let rec stop_daemon attempts =
    if attempts > 0 && Sys.file_exists socket then
      match call ~socket [ {|{"op":"shutdown"}|} ] with
      | [ reply ] when contains reply {|"status":"ok"|} -> ()
      | _ ->
        Unix.sleepf 0.05;
        stop_daemon (attempts - 1)
      | exception (Unix.Unix_error _ | Failure _) ->
        Unix.sleepf 0.05;
        stop_daemon (attempts - 1)
  in
  Fun.protect
    ~finally:(fun () ->
      (match stop with
      | Some s -> Atomic.set s true
      | None -> stop_daemon 100);
      Thread.join server)
    (fun () -> f ~socket)

let parse_response line =
  match Protocol.json_of_string line with
  | Ok j -> j
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let field name j =
  match Protocol.member name j with
  | Some (Protocol.String s) -> s
  | _ -> Alcotest.failf "response without a %S field" name

let expect_ok what reply =
  let j = parse_response reply in
  if field "status" j <> "ok" then Alcotest.failf "%s: %s" what reply

let analyze_req ?timeout_ms path =
  Protocol.request_to_string (Protocol.Analyze { path; periods = None; timeout_ms })

(* a raw client that can misbehave in ways Server.call will not *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_read_line fd =
  let ic = Unix.in_channel_of_descr fd in
  match input_line ic with line -> Some line | exception End_of_file -> None

let test_oversized_request_rejected () =
  with_hardened_server ~max_request_bytes:256 @@ fun ~socket ->
  let rejected_before = Metrics.count "server/rejected" in
  let big = analyze_req (String.make 4096 'x') in
  (match call ~socket [ big ] with
  | [ reply ] ->
    let j = parse_response reply in
    Alcotest.(check string) "status" "error" (field "status" j);
    Alcotest.(check string) "code" "too_large" (field "code" j)
  | other -> Alcotest.failf "expected one reply, got %d" (List.length other)
  | exception Failure _ ->
    (* the connection may be closed before the client finishes writing
       — acceptable, as long as the rejection was counted *)
    ());
  wait_for (fun () -> Metrics.count "server/rejected" > rejected_before);
  Alcotest.(check bool) "rejection counted" true
    (Metrics.count "server/rejected" > rejected_before);
  (* the daemon is unharmed *)
  match call ~socket [ analyze_req (bench "fig1.g") ] with
  | [ reply ] -> expect_ok "still serving" reply
  | _ -> Alcotest.fail "daemon unusable after an oversized request"

let test_slow_loris_times_out () =
  with_hardened_server ~read_timeout_s:0.3 @@ fun ~socket ->
  let timeouts_before = Metrics.count "server/timeouts" in
  let fd = raw_connect socket in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* a few bytes, never the newline *)
  ignore (Unix.write_substring fd "{\"op\":\"ana" 0 10);
  (match raw_read_line fd with
  | Some reply ->
    let j = parse_response reply in
    Alcotest.(check string) "code" "timeout" (field "code" j)
  | None -> Alcotest.fail "connection dropped without the structured goodbye");
  Alcotest.(check bool) "timeout counted" true
    (Metrics.count "server/timeouts" > timeouts_before);
  match call ~socket [ analyze_req (bench "fig1.g") ] with
  | [ reply ] -> expect_ok "still serving" reply
  | _ -> Alcotest.fail "daemon unusable after a slow client"

let test_admission_limit_overloaded () =
  with_hardened_server ~max_connections:1 ~read_timeout_s:10. @@ fun ~socket ->
  let holder = raw_connect socket in
  (* the holder must be *admitted* before the second client arrives *)
  wait_for (fun () -> Metrics.count "server/connections" >= 1);
  let second = raw_connect socket in
  (match raw_read_line second with
  | Some reply ->
    let j = parse_response reply in
    Alcotest.(check string) "status" "error" (field "status" j);
    Alcotest.(check string) "code" "overloaded" (field "code" j)
  | None -> Alcotest.fail "excess client dropped without the structured refusal");
  (try Unix.close second with Unix.Unix_error _ -> ());
  (* freeing the held slot re-opens admission *)
  Unix.close holder;
  let served = ref false in
  let attempts = ref 0 in
  while (not !served) && !attempts < 50 do
    incr attempts;
    match call ~socket [ analyze_req (bench "fig1.g") ] with
    | [ reply ] when field "status" (parse_response reply) = "ok" -> served := true
    | _ | (exception Failure _) | (exception Unix.Unix_error _) -> Unix.sleepf 0.05
  done;
  Alcotest.(check bool) "admission recovered after the holder left" true !served

let test_mid_request_disconnect_is_harmless () =
  with_hardened_server @@ fun ~socket ->
  for _ = 1 to 5 do
    let fd = raw_connect socket in
    ignore (Unix.write_substring fd "{\"op\":\"analy" 0 12);
    Unix.close fd
  done;
  match call ~socket [ analyze_req (bench "fig1.g") ] with
  | [ reply ] -> expect_ok "still serving after 5 rude clients" reply
  | _ -> Alcotest.fail "daemon unusable after disconnecting clients"

let test_accept_survives_emfile () =
  with_failpoints @@ fun () ->
  with_hardened_server @@ fun ~socket ->
  let backoffs_before = Metrics.count "server/accept_backoff" in
  Tsg_obs.Failpoint.activate ~times:2 "server/accept-emfile";
  (* the accept loop eats two injected EMFILEs, backs off, and still
     admits us — the client only sees added latency *)
  (match call ~socket [ analyze_req (bench "fig1.g") ] with
  | [ reply ] -> expect_ok "served" reply
  | _ -> Alcotest.fail "daemon unusable under fd pressure");
  Alcotest.(check bool) "backoff counted" true
    (Metrics.count "server/accept_backoff" >= backoffs_before + 2)

let test_server_requests_survive_injection () =
  with_failpoints @@ fun () ->
  with_hardened_server @@ fun ~socket ->
  Tsg_obs.Failpoint.activate ~times:1 "server/request";
  (match
     call ~socket [ analyze_req (bench "fig1.g"); analyze_req (bench "fig1.g") ]
   with
  | [ injected; healthy ] ->
    let j = parse_response injected in
    Alcotest.(check string) "status" "error" (field "status" j);
    Alcotest.(check string) "code" "internal" (field "code" j);
    expect_ok "the same connection recovers" healthy
  | other -> Alcotest.failf "expected two replies, got %d" (List.length other));
  (* and an injected cache fault surfaces as internal, not a crash *)
  Tsg_obs.Failpoint.activate ~times:1 "cache/lookup";
  match call ~socket [ analyze_req (bench "ring5.g") ] with
  | [ reply ] ->
    let j = parse_response reply in
    Alcotest.(check string) "cache fault is structured" "error" (field "status" j);
    Alcotest.(check string) "cache fault code" "internal" (field "code" j)
  | _ -> Alcotest.fail "daemon died on an injected cache fault"

let test_rpc_timeout_ms () =
  with_hardened_server @@ fun ~socket ->
  let tight = analyze_req ~timeout_ms:0.001 (bench "stack66.g") in
  let unbounded = analyze_req (bench "stack66.g") in
  match call ~socket [ tight; unbounded ] with
  | [ timed_out; served ] ->
    let j = parse_response timed_out in
    Alcotest.(check string) "status" "error" (field "status" j);
    Alcotest.(check string) "code" "deadline_exceeded" (field "code" j);
    (* the timed-out result was not cached: the retry without a budget
       computes the real answer on the same connection *)
    expect_ok "retry without budget succeeds" served
  | other -> Alcotest.failf "expected two replies, got %d" (List.length other)

let test_external_stop_drains () =
  let stop = Atomic.make false in
  with_hardened_server ~stop @@ fun ~socket ->
  (match call ~socket [ analyze_req (bench "fig1.g") ] with
  | [ reply ] -> expect_ok "served" reply
  | _ -> Alcotest.fail "expected one reply");
  (* what the SIGTERM handler does *)
  Atomic.set stop true;
  wait_for (fun () -> not (Sys.file_exists socket));
  Alcotest.(check bool) "socket removed on external stop" false (Sys.file_exists socket)

let test_call_retries_until_daemon_appears () =
  let socket = fresh_socket () in
  let cache = Cache.create ~metrics_prefix:"test-resilience-late" ~capacity:8 () in
  let server =
    Thread.create
      (fun () ->
        (* the daemon shows up late; a retrying client rides it out *)
        Unix.sleepf 0.2;
        Server.serve ~endpoint:(Server.Unix_socket socket)
          ~handler:(make_handler cache) ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (call ~retries:5 ~socket [ {|{"op":"shutdown"}|} ])
       with Unix.Unix_error _ | Failure _ -> ());
      Thread.join server)
    (fun () ->
      match
        call ~retries:10 ~backoff_ms:20. ~socket [ analyze_req (bench "fig1.g") ]
      with
      | [ reply ] -> expect_ok "retried through ENOENT/ECONNREFUSED" reply
      | other -> Alcotest.failf "expected one reply, got %d" (List.length other))

let suite =
  [
    Alcotest.test_case "deadline: none never trips" `Quick test_deadline_none_never_trips;
    Alcotest.test_case "deadline: expiry raises and counts once" `Quick
      test_deadline_expires_and_counts_once;
    Alcotest.test_case "deadline: cancel" `Quick test_deadline_cancel;
    Alcotest.test_case "deadline: ambient scoping" `Quick test_ambient_deadline_scoping;
    Alcotest.test_case "deadline: ambient slot is per-thread" `Quick
      test_ambient_deadline_is_per_thread;
    Alcotest.test_case "deadline: aborts analysis, engine reusable" `Quick
      test_expired_deadline_aborts_analysis;
    Alcotest.test_case "deadline: expiry is prompt" `Quick test_deadline_expiry_is_prompt;
    Alcotest.test_case "deadline: per-item batch budgets" `Quick
      test_batch_deadline_is_per_item_and_structured;
    Alcotest.test_case "validate: delay judgement" `Quick test_validate_delay;
    Alcotest.test_case "validate: size caps" `Quick test_validate_caps;
    Alcotest.test_case "validate: loaders share the wording" `Quick
      test_loaders_share_delay_wording;
    fuzz_parse_request;
    fuzz_loader;
    Alcotest.test_case "fuzz: pathological JSON nesting" `Quick fuzz_deep_nesting;
    Alcotest.test_case "failpoint: pool survives a worker death" `Quick
      test_pool_survives_worker_death;
    Alcotest.test_case "failpoint: batch isolates a loader fault" `Quick
      test_batch_isolates_injected_loader_failure;
    Alcotest.test_case "failpoint: arming is symmetric" `Quick
      test_cache_failpoint_is_isolated_by_server;
    Alcotest.test_case "server: oversized request rejected" `Quick
      test_oversized_request_rejected;
    Alcotest.test_case "server: slow loris times out" `Quick test_slow_loris_times_out;
    Alcotest.test_case "server: admission limit" `Quick test_admission_limit_overloaded;
    Alcotest.test_case "server: mid-request disconnects" `Quick
      test_mid_request_disconnect_is_harmless;
    Alcotest.test_case "server: accept survives EMFILE" `Quick test_accept_survives_emfile;
    Alcotest.test_case "server: injected faults stay per-request" `Quick
      test_server_requests_survive_injection;
    Alcotest.test_case "server: timeout_ms on the wire" `Quick test_rpc_timeout_ms;
    Alcotest.test_case "server: external stop drains" `Quick test_external_stop_drains;
    Alcotest.test_case "client: call retries with backoff" `Quick
      test_call_retries_until_daemon_appears;
  ]
