open Tsg

(* Warm-start what-if analysis must be an exact drop-in for a cold
   re-analysis of the edited graph: the serialised reports are compared
   as bytes, which is the same yardstick the daemon's cached responses
   are held to. *)

let render g report = Tsg_io.Json.to_string (Tsg_io.Json_report.analysis_obj g report)

let cold_render base edits =
  let g' = Whatif.edited_graph base edits in
  (g', render g' (Cycle_time.analyze ~periods:(Whatif.periods base) g'))

let check_warm_equals_cold msg base edits =
  let report, (stats : Whatif.stats) = Whatif.reanalyze base edits in
  let g', cold = cold_render base edits in
  Alcotest.(check string) (msg ^ ": bytes") cold (render g' report);
  Alcotest.(check int)
    (msg ^ ": reused + resimulated = b")
    (List.length (Whatif.border base))
    (stats.Whatif.reused + stats.Whatif.resimulated);
  stats

let fig1_base () = Whatif.prepare (Tsg_circuit.Circuit_library.fig1_tsg ())

(* ------------------------------------------------------------------ *)
(* Short circuits                                                      *)

let test_no_edits_short_circuit () =
  let base = fig1_base () in
  let report, stats = Whatif.reanalyze base [] in
  Alcotest.(check bool) "base report returned" true (report == Whatif.base_report base);
  Alcotest.(check bool)
    "short-circuit path" true
    (stats.Whatif.path = Whatif.Short_circuit)

let test_cancelling_edits_short_circuit () =
  let base = fig1_base () in
  let edits = [ { Whatif.arc = 0; delta = 2.5 }; { Whatif.arc = 0; delta = -2.5 } ] in
  let report, stats = Whatif.reanalyze base edits in
  Alcotest.(check bool) "base report returned" true (report == Whatif.base_report base);
  Alcotest.(check bool)
    "zero net delta short-circuits" true
    (stats.Whatif.path = Whatif.Short_circuit)

(* ------------------------------------------------------------------ *)
(* Warm = cold, byte for byte                                          *)

let test_single_edit_matches_cold () =
  let base = fig1_base () in
  let stats = check_warm_equals_cold "fig1 +1.5" base [ { Whatif.arc = 0; delta = 1.5 } ] in
  Alcotest.(check bool) "warm path taken" true (stats.Whatif.path = Whatif.Warm)

let test_decrease_matches_cold () =
  let base = Whatif.prepare (Tsg_circuit.Circuit_library.async_stack_tsg ()) in
  let g = Whatif.signal_graph base in
  (* shrink the first positive-delay arc to a third *)
  let arc, delay =
    let arcs = Signal_graph.arcs g in
    let rec find i = if arcs.(i).Signal_graph.delay > 0. then (i, arcs.(i).Signal_graph.delay) else find (i + 1) in
    find 0
  in
  ignore
    (check_warm_equals_cold "stack66 shrink" base
       [ { Whatif.arc; delta = -.delay /. 3. } ])

let test_multi_arc_scenario_matches_cold () =
  let base = Whatif.prepare (Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:5 ()) in
  let m = Signal_graph.arc_count (Whatif.signal_graph base) in
  ignore
    (check_warm_equals_cold "ring5 multi-arc" base
       [
         { Whatif.arc = 0; delta = 0.75 };
         { Whatif.arc = m / 2; delta = 3. };
         { Whatif.arc = m - 1; delta = 0.125 };
       ])

(* the QCheck law of the issue: sweep results are byte-identical to N
   independent analyze calls, across jobs *)
let qcheck_sweep_matches_independent =
  Helpers.qcheck_case ~count:40 ~name:"sweep == N independent cold analyses (bytes)"
    (fun g ->
      let base = Whatif.prepare g in
      let m = Signal_graph.arc_count g in
      let arcs = Signal_graph.arcs g in
      let scenarios =
        [|
          [ { Whatif.arc = 0; delta = 1.25 } ];
          [ { Whatif.arc = m / 2; delta = 6.5 } ];
          (* a shrink, kept non-negative *)
          [ { Whatif.arc = m - 1; delta = -.(arcs.(m - 1).Signal_graph.delay /. 2.) } ];
          [ { Whatif.arc = 0; delta = 0.5 }; { Whatif.arc = m / 3; delta = -0. } ];
        |]
      in
      let results = Whatif.sweep ~jobs:2 base scenarios in
      Array.iteri
        (fun i result ->
          match result with
          | Error msg -> QCheck2.Test.fail_reportf "scenario %d failed: %s" i msg
          | Ok (report, _) ->
            let g', cold = cold_render base scenarios.(i) in
            if render g' report <> cold then
              QCheck2.Test.fail_reportf "scenario %d: warm bytes differ from cold" i)
        results;
      true)

(* ------------------------------------------------------------------ *)
(* Structural edits: warm = cold, byte for byte                        *)

let cold_render_changes base changes =
  let g' = Whatif.edited_graph_changes base changes in
  (g', render g' (Cycle_time.analyze ~periods:(Whatif.periods base) g'))

let check_structural_equals_cold msg base changes =
  let report, (stats : Whatif.stats) = Whatif.reanalyze_changes base changes in
  let g', cold = cold_render_changes base changes in
  Alcotest.(check string) (msg ^ ": bytes") cold (render g' report);
  stats

let test_remove_arc_matches_cold () =
  (* gen-dense: removing an unmarked chord keeps the ring backbone
     strongly connected and live, and cannot move the border *)
  let g = Tsg_circuit.Generators.random_live_tsg ~seed:7 ~events:120 ~extra_arcs:240 () in
  let base = Whatif.prepare g in
  let events = Signal_graph.event_count g in
  let arcs = Signal_graph.arcs g in
  let chord =
    let rec find i = if not arcs.(i).Signal_graph.marked then i else find (i + 1) in
    find events
  in
  let stats =
    check_structural_equals_cold "gen-dense remove chord" base [ Whatif.Remove_arc chord ]
  in
  Alcotest.(check bool) "warm path taken" true (stats.Whatif.path = Whatif.Warm)

let test_add_arc_matches_cold () =
  let g = Tsg_circuit.Generators.random_live_tsg ~seed:7 ~events:120 ~extra_arcs:240 () in
  let base = Whatif.prepare g in
  (* an unmarked forward chord (src index < dst index) can never close
     a token-free cycle in this family and never moves the border *)
  let stats =
    check_structural_equals_cold "gen-dense add chord" base
      [ Whatif.Add_arc { src = 3; dst = 57; delay = 4.5; marked = false } ]
  in
  Alcotest.(check bool) "warm path taken" true (stats.Whatif.path = Whatif.Warm)

let test_mixed_structural_and_delay_matches_cold () =
  let g = Tsg_circuit.Generators.random_live_tsg ~seed:7 ~events:120 ~extra_arcs:240 () in
  let base = Whatif.prepare g in
  let events = Signal_graph.event_count g in
  let arcs = Signal_graph.arcs g in
  let chord =
    let rec find i = if not arcs.(i).Signal_graph.marked then i else find (i + 1) in
    find events
  in
  ignore
    (check_structural_equals_cold "gen-dense mixed scenario" base
       [
         Whatif.Remove_arc chord;
         Whatif.Add_arc { src = 10; dst = 90; delay = 2.0; marked = false };
         Whatif.Delay { arc = 0; delta = 1.5 };
       ])

let test_border_change_falls_back_to_cold () =
  (* marking an unmarked in-arc of a non-border repetitive event grows
     the border: the prepared roots are wrong, so the answer must come
     from the cold route — and still match a cold analysis exactly *)
  let g = Tsg_circuit.Generators.random_live_tsg ~seed:7 ~events:120 ~extra_arcs:240 () in
  let base = Whatif.prepare g in
  let border = Whatif.border base in
  let arcs = Signal_graph.arcs g in
  let candidate =
    let rec find i =
      let a = arcs.(i) in
      if (not a.Signal_graph.marked)
         && (not a.Signal_graph.disengageable)
         && (not (List.mem a.Signal_graph.arc_dst border))
         && Signal_graph.is_repetitive g a.Signal_graph.arc_dst
      then i
      else find (i + 1)
    in
    find 0
  in
  let changes = [ Whatif.Set_marked { arc = candidate; marked = true } ] in
  Tsg_engine.Metrics.reset ();
  let stats = check_structural_equals_cold "border move" base changes in
  Alcotest.(check bool) "cold route" true (stats.Whatif.path = Whatif.Cold);
  Alcotest.(check int) "whatif/structural_cold counted" 1
    (Tsg_engine.Metrics.count "whatif/structural_cold")

let test_structural_noop_short_circuits () =
  let base = fig1_base () in
  let report, stats =
    Whatif.reanalyze_changes base
      [ Whatif.Set_marked { arc = 0; marked = (Signal_graph.arc (Whatif.signal_graph base) 0).Signal_graph.marked } ]
  in
  Alcotest.(check bool) "base report returned" true (report == Whatif.base_report base);
  Alcotest.(check bool) "short-circuit" true (stats.Whatif.path = Whatif.Short_circuit)

let test_remove_readd_is_not_short_circuit () =
  (* removing an arc and adding an identical one back permutes arc
     ids: the canonical digest matches the base, but the report's
     critical walk names arc ids, so a short-circuit would be wrong *)
  let g = Tsg_circuit.Generators.random_live_tsg ~seed:7 ~events:120 ~extra_arcs:240 () in
  let base = Whatif.prepare g in
  let events = Signal_graph.event_count g in
  let arcs = Signal_graph.arcs g in
  let chord =
    let rec find i = if not arcs.(i).Signal_graph.marked then i else find (i + 1) in
    find events
  in
  let a = arcs.(chord) in
  let changes =
    [
      Whatif.Remove_arc chord;
      Whatif.Add_arc
        {
          src = a.Signal_graph.arc_src;
          dst = a.Signal_graph.arc_dst;
          delay = a.Signal_graph.delay;
          marked = a.Signal_graph.marked;
        };
    ]
  in
  let stats = check_structural_equals_cold "remove + re-add" base changes in
  Alcotest.(check bool) "answered, but not by short-circuit" true
    (stats.Whatif.path <> Whatif.Short_circuit)

let qcheck_structural_matches_cold =
  Helpers.qcheck_case ~count:40
    ~name:"structural reanalyze == cold analyze (bytes, incl. failures)"
    (fun g ->
      let base = Whatif.prepare g in
      let m = Signal_graph.arc_count g in
      let n = Signal_graph.event_count g in
      let arcs = Signal_graph.arcs g in
      let scenarios =
        [
          [ Whatif.Remove_arc (m - 1) ];
          [ Whatif.Remove_arc (m / 2) ];
          [ Whatif.Add_arc { src = 0; dst = n / 2; delay = 1.5; marked = false } ];
          [ Whatif.Add_arc { src = n - 1; dst = 0; delay = 2.5; marked = true } ];
          [ Whatif.Set_marked { arc = m / 3; marked = not arcs.(m / 3).Signal_graph.marked } ];
          [
            Whatif.Remove_arc (m - 1);
            Whatif.Add_arc { src = 1 mod n; dst = n - 1; delay = 0.5; marked = false };
            Whatif.Delay { arc = 0; delta = 0.75 };
          ];
        ]
      in
      List.iteri
        (fun i changes ->
          (* either both sides succeed with identical bytes, or both
             fail with the identical exception *)
          let outcome f =
            match f () with
            | bytes -> Ok bytes
            | exception Invalid_argument msg -> Error ("invalid: " ^ msg)
            | exception Cycle_time.Not_analyzable msg -> Error ("not analyzable: " ^ msg)
          in
          let warm =
            outcome (fun () ->
                let report, _ = Whatif.reanalyze_changes base changes in
                render (Whatif.edited_graph_changes base changes) report)
          in
          let cold =
            outcome (fun () ->
                let g' = Whatif.edited_graph_changes base changes in
                render g' (Cycle_time.analyze ~periods:(Whatif.periods base) g'))
          in
          if warm <> cold then
            QCheck2.Test.fail_reportf "scenario %d: warm %s / cold %s" i
              (match warm with Ok _ -> "ok-bytes-differ" | Error e -> e)
              (match cold with Ok _ -> "ok" | Error e -> e))
        scenarios;
      true)

let test_structural_validation_errors () =
  let base = fig1_base () in
  let expect_invalid msg changes =
    match Whatif.reanalyze_changes base changes with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
    | exception Invalid_argument m ->
      (* the cold-side reference must reject with the same message *)
      (match Whatif.edited_graph_changes base changes with
       | _ -> Alcotest.failf "%s: cold side accepted" msg
       | exception Invalid_argument m' ->
         Alcotest.(check string) (msg ^ ": same message") m m')
  in
  expect_invalid "dead arc reference"
    [ Whatif.Remove_arc 0; Whatif.Delay { arc = 0; delta = 1.0 } ];
  expect_invalid "dead marking flip"
    [ Whatif.Remove_arc 1; Whatif.Set_marked { arc = 1; marked = true } ];
  expect_invalid "duplicate removal" [ Whatif.Remove_arc 2; Whatif.Remove_arc 2 ];
  expect_invalid "arc id out of range" [ Whatif.Remove_arc 9999 ];
  expect_invalid "added event out of range"
    [ Whatif.Add_arc { src = 0; dst = 9999; delay = 1.0; marked = false } ];
  expect_invalid "added delay invalid"
    [ Whatif.Add_arc { src = 0; dst = 1; delay = -1.0; marked = false } ]

let test_disconnecting_edit_not_analyzable_both_ways () =
  (* cutting every in-arc of a repetitive event disconnects it from
     the border: warm and cold must refuse with the identical message *)
  let base = fig1_base () in
  let g = Whatif.signal_graph base in
  let target =
    let rec find e =
      if Signal_graph.is_repetitive g e then e
      else find (e + 1)
    in
    find 0
  in
  let arcs = Signal_graph.arcs g in
  let changes =
    Array.to_list arcs
    |> List.mapi (fun i (a : Signal_graph.arc) ->
           if a.Signal_graph.arc_dst = target then Some (Whatif.Remove_arc i) else None)
    |> List.filter_map Fun.id
  in
  let outcome f =
    match f () with
    | _ -> None
    | exception Cycle_time.Not_analyzable m -> Some m
  in
  let warm = outcome (fun () -> Whatif.reanalyze_changes base changes) in
  let cold = outcome (fun () -> Whatif.edited_graph_changes base changes) in
  match (warm, cold) with
  | Some w, Some c -> Alcotest.(check string) "identical Not_analyzable" c w
  | _ -> Alcotest.fail "expected Not_analyzable from both routes"

let test_structural_sweep_shares_scratch () =
  let g = Tsg_circuit.Generators.random_live_tsg ~seed:7 ~events:120 ~extra_arcs:240 () in
  let base = Whatif.prepare g in
  let events = Signal_graph.event_count g in
  let arcs = Signal_graph.arcs g in
  let chords =
    Array.of_list
      (List.filter
         (fun i -> not arcs.(i).Signal_graph.marked)
         (List.init (Array.length arcs - events) (fun i -> events + i)))
  in
  let scenarios =
    Array.init 8 (fun i ->
        if i mod 2 = 0 then [ Whatif.Remove_arc chords.(i * 3 mod Array.length chords) ]
        else
          [
            Whatif.Add_arc
              { src = i; dst = i + 40; delay = float_of_int (1 + i); marked = false };
          ])
  in
  let results = Whatif.sweep_changes ~jobs:2 base scenarios in
  Array.iteri
    (fun i result ->
      match result with
      | Error msg -> Alcotest.failf "scenario %d failed: %s" i msg
      | Ok (report, _) ->
        let g', cold = cold_render_changes base scenarios.(i) in
        Alcotest.(check string)
          (Printf.sprintf "scenario %d: bytes" i)
          cold (render g' report))
    results

(* ------------------------------------------------------------------ *)
(* Errors and edge cases                                               *)

let test_invalid_edits_rejected () =
  let base = fig1_base () in
  let m = Signal_graph.arc_count (Whatif.signal_graph base) in
  Alcotest.check_raises "out-of-range arc"
    (Invalid_argument
       (Printf.sprintf "Whatif: arc id %d out of range (the graph has %d arcs)" m m))
    (fun () -> ignore (Whatif.reanalyze base [ { Whatif.arc = m; delta = 1. } ]));
  (match Whatif.reanalyze base [ { Whatif.arc = 0; delta = -1e9 } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative edited delay accepted");
  match Whatif.reanalyze base [ { Whatif.arc = 0; delta = Float.nan } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN delta accepted"

let test_sweep_isolates_bad_scenario () =
  let base = fig1_base () in
  let scenarios =
    [|
      [ { Whatif.arc = 0; delta = 1. } ];
      [ { Whatif.arc = -7; delta = 1. } ];
      [ { Whatif.arc = 0; delta = 2. } ];
    |]
  in
  let results = Whatif.sweep base scenarios in
  (match results.(1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid scenario did not error");
  Array.iteri
    (fun i result ->
      if i <> 1 then
        match result with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "scenario %d poisoned by neighbour: %s" i msg)
    results

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)

let test_deadline_mid_sweep_pool_reusable () =
  (* gen-dense-sized base so each warm re-analysis does real work *)
  let g = Tsg_circuit.Generators.random_live_tsg ~seed:7 ~events:120 ~extra_arcs:240 () in
  let base = Whatif.prepare g in
  let scenarios =
    Array.init 6 (fun i -> [ { Whatif.arc = i; delta = float_of_int (i + 1) } ])
  in
  let strangled = Whatif.sweep ~jobs:4 ~budget_ms:1e-6 base scenarios in
  Array.iteri
    (fun i result ->
      match result with
      | Error msg ->
        if not (String.length msg >= 17 && String.sub msg 0 17 = "deadline_exceeded") then
          Alcotest.failf "scenario %d: unexpected error %S" i msg
      | Ok _ -> Alcotest.failf "scenario %d survived a 1ns budget" i)
    strangled;
  (* the pool (and the prepared base) must be immediately reusable *)
  let results = Whatif.sweep ~jobs:4 base scenarios in
  Array.iteri
    (fun i result ->
      match result with
      | Ok (report, _) ->
        let g', cold = cold_render base scenarios.(i) in
        Alcotest.(check string)
          (Printf.sprintf "scenario %d after timeout: bytes" i)
          cold (render g' report)
      | Error msg -> Alcotest.failf "scenario %d failed after timeout: %s" i msg)
    results

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let test_failpoint_falls_back_to_cold () =
  let base = fig1_base () in
  let edits = [ { Whatif.arc = 1; delta = 4. } ] in
  let warm_report, warm_stats = Whatif.reanalyze base edits in
  Alcotest.(check bool) "warm before arming" true (warm_stats.Whatif.path = Whatif.Warm);
  Tsg_obs.Failpoint.activate "whatif/warm";
  Fun.protect ~finally:(fun () -> Tsg_obs.Failpoint.deactivate "whatif/warm")
  @@ fun () ->
  let cold_report, cold_stats = Whatif.reanalyze base edits in
  Alcotest.(check bool) "cold fallback path" true (cold_stats.Whatif.path = Whatif.Cold);
  Alcotest.(check int) "no reuse on the cold path" 0 cold_stats.Whatif.reused;
  let g' = Whatif.edited_graph base edits in
  Alcotest.(check string) "cold fallback bytes = warm bytes" (render g' warm_report)
    (render g' cold_report)

(* ------------------------------------------------------------------ *)
(* Reuse accounting                                                    *)

let test_metrics_accounting () =
  let base = Whatif.prepare (Tsg_circuit.Circuit_library.async_stack_tsg ()) in
  let b = List.length (Whatif.border base) in
  Tsg_engine.Metrics.reset ();
  let _, (stats : Whatif.stats) =
    Whatif.reanalyze base [ { Whatif.arc = 0; delta = 2. } ]
  in
  Alcotest.(check int) "whatif/reused counter" stats.Whatif.reused
    (Tsg_engine.Metrics.count "whatif/reused");
  Alcotest.(check int) "whatif/resimulated counter" stats.Whatif.resimulated
    (Tsg_engine.Metrics.count "whatif/resimulated");
  Alcotest.(check int) "partition of the border" b
    (stats.Whatif.reused + stats.Whatif.resimulated)

let suite =
  [
    Alcotest.test_case "no edits short-circuit" `Quick test_no_edits_short_circuit;
    Alcotest.test_case "cancelling edits short-circuit" `Quick
      test_cancelling_edits_short_circuit;
    Alcotest.test_case "single edit = cold (bytes)" `Quick test_single_edit_matches_cold;
    Alcotest.test_case "delay decrease = cold (bytes)" `Quick test_decrease_matches_cold;
    Alcotest.test_case "multi-arc scenario = cold (bytes)" `Quick
      test_multi_arc_scenario_matches_cold;
    qcheck_sweep_matches_independent;
    Alcotest.test_case "invalid edits rejected" `Quick test_invalid_edits_rejected;
    Alcotest.test_case "sweep isolates a bad scenario" `Quick
      test_sweep_isolates_bad_scenario;
    Alcotest.test_case "deadline mid-sweep leaves pool reusable" `Quick
      test_deadline_mid_sweep_pool_reusable;
    Alcotest.test_case "failpoint falls back to cold" `Quick
      test_failpoint_falls_back_to_cold;
    Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
    Alcotest.test_case "structural: remove arc = cold (bytes)" `Quick
      test_remove_arc_matches_cold;
    Alcotest.test_case "structural: add arc = cold (bytes)" `Quick
      test_add_arc_matches_cold;
    Alcotest.test_case "structural: mixed scenario = cold (bytes)" `Quick
      test_mixed_structural_and_delay_matches_cold;
    Alcotest.test_case "structural: border move falls back to cold" `Quick
      test_border_change_falls_back_to_cold;
    Alcotest.test_case "structural: marking no-op short-circuits" `Quick
      test_structural_noop_short_circuits;
    Alcotest.test_case "structural: remove + re-add is not a short-circuit" `Quick
      test_remove_readd_is_not_short_circuit;
    qcheck_structural_matches_cold;
    Alcotest.test_case "structural: validation errors" `Quick
      test_structural_validation_errors;
    Alcotest.test_case "structural: disconnecting edit fails identically" `Quick
      test_disconnecting_edit_not_analyzable_both_ways;
    Alcotest.test_case "structural: sweep_changes = cold (bytes)" `Quick
      test_structural_sweep_shares_scratch;
  ]
