open Tsg

let fig1 () = Tsg_circuit.Circuit_library.fig1_tsg ()

let test_instance_layout () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:3 in
  (* 8 events in period 0, 6 repetitive in periods 1 and 2 *)
  Alcotest.(check int) "instance count" (8 + 6 + 6) (Unfolding.instance_count u);
  Alcotest.(check int) "periods" 3 (Unfolding.periods u)

let test_instance_roundtrip () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:3 in
  for e = 0 to Signal_graph.event_count g - 1 do
    for p = 0 to 2 do
      match Unfolding.instance_opt u ~event:e ~period:p with
      | Some i ->
        Alcotest.(check (pair int int)) "roundtrip" (e, p) (Unfolding.event_of_instance u i)
      | None ->
        Alcotest.(check bool) "only non-repetitive instances missing" false
          (Signal_graph.is_repetitive g e || p = 0)
    done
  done

let test_non_repetitive_single_instance () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:2 in
  let f = Signal_graph.id g (Event.of_string_exn "f-") in
  Alcotest.(check bool) "period 0 exists" true
    (Unfolding.instance_opt u ~event:f ~period:0 <> None);
  Alcotest.(check bool) "period 1 missing" true
    (Unfolding.instance_opt u ~event:f ~period:1 = None)

let test_instance_exn () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:2 in
  let f = Signal_graph.id g (Event.of_string_exn "f-") in
  Alcotest.check_raises "missing instance"
    (Invalid_argument
       (Printf.sprintf "Unfolding.instance: no instance of event %d in period 1" f))
    (fun () -> ignore (Unfolding.instance u ~event:f ~period:1))

let test_acyclic () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:5 in
  Alcotest.(check bool) "unfolding is a dag" true (Tsg_graph.Topo.is_dag (Unfolding.dag u));
  let ring = Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:7 () in
  let ur = Unfolding.make ring ~periods:9 in
  Alcotest.(check bool) "ring unfolding is a dag" true
    (Tsg_graph.Topo.is_dag (Unfolding.dag ur))

let test_marked_arcs_cross_periods () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:4 in
  Tsg_graph.Digraph.iter_arcs (Unfolding.dag u) (fun src dst aid ->
      let _, p_src = Unfolding.event_of_instance u src in
      let _, p_dst = Unfolding.event_of_instance u dst in
      let a = Signal_graph.arc (Unfolding.signal_graph u) aid in
      let expected_gap = if a.Signal_graph.marked then 1 else 0 in
      Alcotest.(check int) "period gap equals marking" expected_gap (p_dst - p_src))

let test_disengageable_once () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:4 in
  let e = Signal_graph.id g (Event.of_string_exn "e-") in
  let a = Signal_graph.id g (Event.of_string_exn "a+") in
  let e0 = Unfolding.instance u ~event:e ~period:0 in
  let count_arcs_to period =
    let target = Unfolding.instance u ~event:a ~period in
    List.length
      (List.filter (fun (src, _) -> src = e0) (Tsg_graph.Digraph.in_arcs (Unfolding.dag u) target))
  in
  Alcotest.(check int) "constrains a+ period 0" 1 (count_arcs_to 0);
  Alcotest.(check int) "does not constrain a+ period 1" 0 (count_arcs_to 1);
  Alcotest.(check int) "does not constrain a+ period 3" 0 (count_arcs_to 3)

let test_initial_instances () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:2 in
  let names =
    List.map
      (fun i ->
        let e, p = Unfolding.event_of_instance u i in
        Alcotest.(check int) "initial instances in period 0" 0 p;
        Event.to_string (Signal_graph.event g e))
      (Unfolding.initial_instances u)
  in
  Alcotest.(check (list string)) "I_u = {e-}" [ "e-" ] names

let test_initial_instances_all_marked () =
  (* an event whose every in-arc is marked belongs to I_u *)
  let b = Signal_graph.builder () in
  Signal_graph.add_event b (Event.rise "a") Signal_graph.Repetitive;
  Signal_graph.add_event b (Event.rise "b") Signal_graph.Repetitive;
  Signal_graph.add_arc b ~marked:true ~delay:1. (Event.rise "a") (Event.rise "b");
  Signal_graph.add_arc b ~marked:false ~delay:1. (Event.rise "b") (Event.rise "a");
  let g = Signal_graph.build_exn b in
  let u = Unfolding.make g ~periods:2 in
  let names =
    List.map
      (fun i ->
        let e, _ = Unfolding.event_of_instance u i in
        Event.to_string (Signal_graph.event g e))
      (Unfolding.initial_instances u)
  in
  Alcotest.(check (list string)) "b+ starts immediately" [ "b+" ] names

let test_arc_count_growth () =
  let ring = Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:5 () in
  let u1 = Unfolding.make ring ~periods:1 in
  let u3 = Unfolding.make ring ~periods:3 in
  (* each extra period adds at most one instance per TSG arc *)
  Alcotest.(check bool) "arcs grow linearly" true
    (Tsg_graph.Digraph.arc_count (Unfolding.dag u3)
     - Tsg_graph.Digraph.arc_count (Unfolding.dag u1)
    = 2 * Signal_graph.arc_count ring)

let test_csr_matches_digraph () =
  let g = Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:4 () in
  let u = Unfolding.make g ~periods:5 in
  let dag = Unfolding.dag u in
  let starts_in, srcs, in_aids = Unfolding.in_adjacency u in
  let starts_out, dsts, out_aids = Unfolding.out_adjacency u in
  for v = 0 to Unfolding.instance_count u - 1 do
    let csr_in =
      List.init (starts_in.(v + 1) - starts_in.(v)) (fun k ->
          (srcs.(starts_in.(v) + k), in_aids.(starts_in.(v) + k)))
    in
    Alcotest.(check (list (pair int int)))
      "in-adjacency agrees"
      (List.sort compare (Tsg_graph.Digraph.in_arcs dag v))
      (List.sort compare csr_in);
    let csr_out =
      List.init (starts_out.(v + 1) - starts_out.(v)) (fun k ->
          (dsts.(starts_out.(v) + k), out_aids.(starts_out.(v) + k)))
    in
    Alcotest.(check (list (pair int int)))
      "out-adjacency agrees"
      (List.sort compare (Tsg_graph.Digraph.out_arcs dag v))
      (List.sort compare csr_out)
  done

let test_topological_order_cached () =
  let g = Tsg_circuit.Circuit_library.fig1_tsg () in
  let u = Unfolding.make g ~periods:3 in
  let o1 = Unfolding.topological_order u in
  let o2 = Unfolding.topological_order u in
  Alcotest.(check bool) "same array (cached)" true (o1 == o2);
  (* it really is topological *)
  let pos = Array.make (Unfolding.instance_count u) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) o1;
  Tsg_graph.Digraph.iter_arcs (Unfolding.dag u) (fun src dst _ ->
      Alcotest.(check bool) "arc goes forward" true (pos.(src) < pos.(dst)))

let test_topo_position_inverse () =
  let g = Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:4 () in
  let u = Unfolding.make g ~periods:5 in
  let order = Unfolding.topological_order u in
  let pos = Unfolding.topo_position u in
  Alcotest.(check bool) "same array (cached)" true (pos == Unfolding.topo_position u);
  Array.iteri
    (fun k v -> Alcotest.(check int) "inverse of the topological order" k pos.(v))
    order;
  (* the windowing property: nothing before an instance's position is
     reachable from it *)
  Tsg_graph.Digraph.iter_arcs (Unfolding.dag u) (fun src dst _ ->
      Alcotest.(check bool) "arcs go to larger positions" true (pos.(src) < pos.(dst)))

let test_rejects_zero_periods () =
  let g = fig1 () in
  Alcotest.check_raises "periods >= 1" (Invalid_argument "Unfolding.make: periods must be >= 1")
    (fun () -> ignore (Unfolding.make g ~periods:0))

let suite =
  [
    Alcotest.test_case "instance layout" `Quick test_instance_layout;
    Alcotest.test_case "instance/event roundtrip" `Quick test_instance_roundtrip;
    Alcotest.test_case "non-repetitive events instantiate once" `Quick
      test_non_repetitive_single_instance;
    Alcotest.test_case "missing instance raises" `Quick test_instance_exn;
    Alcotest.test_case "unfoldings are acyclic" `Quick test_acyclic;
    Alcotest.test_case "marked arcs cross one period" `Quick test_marked_arcs_cross_periods;
    Alcotest.test_case "disengageable arcs constrain once" `Quick test_disengageable_once;
    Alcotest.test_case "I_u of fig1" `Quick test_initial_instances;
    Alcotest.test_case "I_u includes fully-marked events" `Quick
      test_initial_instances_all_marked;
    Alcotest.test_case "arc growth per period" `Quick test_arc_count_growth;
    Alcotest.test_case "CSR views agree with the digraph" `Quick test_csr_matches_digraph;
    Alcotest.test_case "topological order is cached and valid" `Quick
      test_topological_order_cached;
    Alcotest.test_case "topo_position inverts the order" `Quick
      test_topo_position_inverse;
    Alcotest.test_case "rejects zero periods" `Quick test_rejects_zero_periods;
  ]
