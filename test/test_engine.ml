open Tsg
open Tsg_engine

(* the benchmarks tree is materialised next to the test dir by dune *)
let benchmarks_dir = try Sys.getenv "BENCHMARKS" with Not_found -> "../benchmarks"

let benchmark_files () =
  Sys.readdir benchmarks_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".g")
  |> List.sort compare
  |> List.map (Filename.concat benchmarks_dir)

let analyze_file path =
  match Tsg_io.Loader.load_file path with
  | Error msg -> Error msg
  | Ok m -> (
    match Cycle_time.analyze m.Tsg_io.Loader.graph with
    | report -> Ok report.Cycle_time.cycle_time
    | exception Cycle_time.Not_analyzable msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_map_basic () =
  let pool = Pool.create ~size:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = Array.init 100 Fun.id in
      Alcotest.(check (array int))
        "order preserved"
        (Array.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs);
      Alcotest.(check (array int)) "empty input" [||] (Pool.map pool succ [||]))

let test_pool_reuses_domains () =
  (* every participant (all workers + the caller) claims exactly one
     item and blocks until all have joined, so both calls observe the
     full set of pool domains; identical non-caller id sets across the
     two calls means the domains were reused, not respawned *)
  let pool = Pool.create ~size:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let participants = Pool.size pool + 1 in
      let ids_of_call () =
        let started = Atomic.make 0 in
        let ids =
          Pool.map pool
            (fun _ ->
              Atomic.incr started;
              while Atomic.get started < participants do
                Domain.cpu_relax ()
              done;
              (Domain.self () :> int))
            (Array.init participants Fun.id)
        in
        List.sort_uniq compare (Array.to_list ids)
      in
      let self = (Domain.self () :> int) in
      let ids1 = ids_of_call () in
      let ids2 = ids_of_call () in
      Alcotest.(check int) "all participants took part" participants (List.length ids1);
      Alcotest.(check (list int))
        "same worker domains on the second call"
        (List.filter (fun i -> i <> self) ids1)
        (List.filter (fun i -> i <> self) ids2))

let test_pool_map_after_shutdown () =
  let pool = Pool.create ~size:2 () in
  Pool.shutdown pool;
  (* degenerates to the calling domain, but still completes *)
  Alcotest.(check (array int))
    "inline after shutdown" [| 1; 2; 3 |]
    (Pool.map pool succ [| 0; 1; 2 |])

exception Boom of int

let test_pool_exception_deterministic () =
  let pool = Pool.create ~size:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for _ = 1 to 10 do
        let got =
          try
            ignore
              (Pool.map pool
                 (fun i -> if i = 3 || i = 7 || i = 11 then raise (Boom i) else i)
                 (Array.init 32 Fun.id));
            None
          with Boom i -> Some i
        in
        Alcotest.(check (option int)) "smallest failing index wins" (Some 3) got
      done)

let test_pool_size_is_capped () =
  let pool = Pool.create ~size:10_000 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool)
        "capped at recommended_domain_count" true
        (Pool.size pool <= Pool.recommended ()))

(* ------------------------------------------------------------------ *)
(* Batch                                                               *)

let test_batch_matches_sequential () =
  let files = benchmark_files () in
  Alcotest.(check bool) "found benchmark files" true (List.length files >= 5);
  let sequential = List.map (fun f -> (f, analyze_file f)) files in
  let entries = Batch.run ~jobs:4 ~label:Fun.id ~f:analyze_file files in
  Alcotest.(check int) "one entry per file" (List.length files) (List.length entries);
  List.iter2
    (fun (file, seq) (e : _ Batch.entry) ->
      Alcotest.(check string) "entry order follows input order" file e.Batch.label;
      match (seq, e.Batch.outcome) with
      | Ok l1, Ok l2 -> Helpers.check_float (file ^ ": same cycle time") l1 l2
      | Error _, Error _ -> ()
      | Ok _, Error msg -> Alcotest.failf "%s: batch failed but sequential ok: %s" file msg
      | Error msg, Ok _ -> Alcotest.failf "%s: batch ok but sequential failed: %s" file msg)
    sequential entries

let test_batch_isolates_faults () =
  let corrupt = Filename.temp_file "corrupt" ".g" in
  Fun.protect
    ~finally:(fun () -> Sys.remove corrupt)
    (fun () ->
      Out_channel.with_open_text corrupt (fun oc ->
          Out_channel.output_string oc ".model broken\n.graph\nthis is not an arc line\n");
      let files =
        [
          Filename.concat benchmarks_dir "fig1.g";
          corrupt;
          "no_such_file.g";
          Filename.concat benchmarks_dir "ring5.g";
        ]
      in
      let errors_before = Metrics.count "batch/errors" in
      let entries = Batch.run ~jobs:4 ~label:Fun.id ~f:analyze_file files in
      match entries with
      | [ fig1; bad; missing; ring5 ] ->
        (match fig1.Batch.outcome with
        | Ok l -> Helpers.check_float "fig1 analyzed" 10. l
        | Error msg -> Alcotest.failf "fig1 should analyze: %s" msg);
        Alcotest.(check bool) "corrupt file yields an error entry" true
          (Result.is_error bad.Batch.outcome);
        Alcotest.(check bool) "missing file yields an error entry" true
          (Result.is_error missing.Batch.outcome);
        (match ring5.Batch.outcome with
        | Ok l -> Helpers.check_float "ring5 still analyzed" (20. /. 3.) l
        | Error msg -> Alcotest.failf "ring5 should analyze: %s" msg);
        Alcotest.(check int) "batch/errors metric bumped" (errors_before + 2)
          (Metrics.count "batch/errors")
      | _ -> Alcotest.fail "expected four entries")

let test_batch_catches_exceptions () =
  let entries =
    Batch.run ~jobs:2 ~label:string_of_int
      ~f:(fun i -> if i mod 2 = 0 then failwith "even" else Ok (i * 10))
      [ 1; 2; 3 ]
  in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  List.iter2
    (fun expected (e : _ Batch.entry) ->
      match (expected, e.Batch.outcome) with
      | Some v, Ok v' -> Alcotest.(check int) "value" v v'
      | None, Error _ -> ()
      | _ -> Alcotest.fail "outcome mismatch")
    [ Some 10; None; Some 30 ] entries

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_threaded_through_analyze () =
  Metrics.reset ();
  let g = Tsg_circuit.Circuit_library.fig1_tsg () in
  let report = Cycle_time.analyze g in
  Helpers.check_float "sanity: fig1 lambda" 10. report.Cycle_time.cycle_time;
  Alcotest.(check int) "one graph analyzed" 1 (Metrics.count "analyze/graphs");
  Alcotest.(check int) "one unfolding built" 1 (Metrics.count "unfolding/built");
  Alcotest.(check bool) "instances counted" true (Metrics.count "unfolding/instances" > 0);
  Alcotest.(check int)
    "one initiated simulation per border event, plus the backtrack re-run"
    (List.length report.Cycle_time.border + 1)
    (Metrics.count "simulations/initiated");
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " timed") true (Metrics.count phase = 1);
      Alcotest.(check bool) (phase ^ " non-negative") true (Metrics.total_ms phase >= 0.))
    [ "analyze/unfold"; "analyze/simulate"; "analyze/backtrack" ];
  let json = Tsg_io.Json_report.metrics () in
  Alcotest.(check bool) "metrics JSON mentions the phases" true
    (let contains text needle =
       let n = String.length needle in
       let found = ref false in
       let i = ref 0 in
       while (not !found) && !i + n <= String.length text do
         if String.sub text !i n = needle then found := true else incr i
       done;
       !found
     in
     contains json {|"name":"analyze/unfold"|})

(* ------------------------------------------------------------------ *)
(* Loader dialect sniffing                                             *)

let native_with_comment =
  "# unlike petrify files, no .marking section appears below\n\
   .model sniff\n\
   .graph\n\
   a+ b+ 1\n\
   b+ a+ 1 token\n\
   .end\n"

let test_loader_ignores_comments () =
  Alcotest.(check bool) "comment .marking is not astg" false
    (Tsg_io.Loader.is_astg native_with_comment);
  match Tsg_io.Loader.of_string native_with_comment with
  | Error msg -> Alcotest.failf "native parse failed: %s" msg
  | Ok m ->
    Alcotest.(check bool) "native dialect" true (m.Tsg_io.Loader.dialect = `Native);
    Helpers.check_float "cycle time" 2. (Cycle_time.cycle_time m.Tsg_io.Loader.graph)

let test_loader_detects_astg () =
  let astg =
    ".model tiny\n.graph\na+ b+\nb+ a+\n.marking { <b+,a+> }\n.end\n"
  in
  Alcotest.(check bool) "real .marking is astg" true (Tsg_io.Loader.is_astg astg);
  match Tsg_io.Loader.of_string astg with
  | Error msg -> Alcotest.failf "astg parse failed: %s" msg
  | Ok m -> Alcotest.(check bool) "astg dialect" true (m.Tsg_io.Loader.dialect = `Astg)

let test_loader_large_input_no_overflow () =
  (* the old scan recursed once per byte; megabytes of comments must
     not overflow the stack *)
  let buf = Buffer.create (1 lsl 21) in
  Buffer.add_string buf "# big preamble\n";
  for _ = 1 to 40_000 do
    Buffer.add_string buf "# padding padding padding padding padding padding\n"
  done;
  Buffer.add_string buf ".model big\n.graph\na+ b+ 1\nb+ a+ 1 token\n.end\n";
  match Tsg_io.Loader.of_string (Buffer.contents buf) with
  | Ok m -> Alcotest.(check bool) "parsed as native" true (m.Tsg_io.Loader.dialect = `Native)
  | Error msg -> Alcotest.failf "large input failed: %s" msg

let prop_batch_equals_sequential =
  Helpers.qcheck_case ~count:30 ~name:"Batch.run equals sequential analysis" (fun g ->
      let text = Tsg_io.Stg_format.to_string g in
      let f text =
        match Tsg_io.Loader.of_string text with
        | Error msg -> Error msg
        | Ok m -> (
          match Cycle_time.cycle_time m.Tsg_io.Loader.graph with
          | l -> Ok l
          | exception Cycle_time.Not_analyzable msg -> Error msg)
      in
      let seq = f text in
      match (Batch.run ~jobs:3 ~label:(fun _ -> "g") ~f [ text; text; text ], seq) with
      | [ a; b; c ], Ok l ->
        List.for_all
          (fun (e : _ Batch.entry) ->
            match e.Batch.outcome with Ok l' -> Helpers.float_close l l' | Error _ -> false)
          [ a; b; c ]
      | [ a; b; c ], Error _ ->
        List.for_all (fun (e : _ Batch.entry) -> Result.is_error e.Batch.outcome) [ a; b; c ]
      | _ -> false)

let suite =
  [
    Alcotest.test_case "Pool.map basics" `Quick test_pool_map_basic;
    Alcotest.test_case "Pool.map reuses its domains" `Quick test_pool_reuses_domains;
    Alcotest.test_case "Pool.map after shutdown" `Quick test_pool_map_after_shutdown;
    Alcotest.test_case "Pool.map deterministic exception" `Quick
      test_pool_exception_deterministic;
    Alcotest.test_case "Pool size capped" `Quick test_pool_size_is_capped;
    Alcotest.test_case "Batch matches sequential on benchmarks/*.g" `Quick
      test_batch_matches_sequential;
    Alcotest.test_case "Batch isolates faults" `Quick test_batch_isolates_faults;
    Alcotest.test_case "Batch catches exceptions" `Quick test_batch_catches_exceptions;
    Alcotest.test_case "Metrics threaded through analyze" `Quick
      test_metrics_threaded_through_analyze;
    Alcotest.test_case "Loader ignores commented .marking" `Quick
      test_loader_ignores_comments;
    Alcotest.test_case "Loader detects real .marking" `Quick test_loader_detects_astg;
    Alcotest.test_case "Loader survives megabyte inputs" `Quick
      test_loader_large_input_no_overflow;
    prop_batch_equals_sequential;
  ]
