open Tsg
open Tsg_circuit

let test_ring_shape () =
  let g = Generators.ring_tsg ~events:10 ~tokens:3 () in
  Alcotest.(check int) "events" 10 (Signal_graph.event_count g);
  Alcotest.(check int) "arcs" 10 (Signal_graph.arc_count g);
  Alcotest.(check int) "tokens" 3
    (Array.fold_left
       (fun acc (a : Signal_graph.arc) -> if a.marked then acc + 1 else acc)
       0 (Signal_graph.arcs g))

let test_ring_validation () =
  Alcotest.check_raises "tokens range" (Invalid_argument "ring_tsg: tokens out of range")
    (fun () -> ignore (Generators.ring_tsg ~events:3 ~tokens:4 ()))

let test_random_deterministic () =
  let g1 = Generators.random_live_tsg ~seed:7 ~events:8 ~extra_arcs:5 () in
  let g2 = Generators.random_live_tsg ~seed:7 ~events:8 ~extra_arcs:5 () in
  Helpers.same_graph "same seed, same graph" g1 g2;
  let g3 = Generators.random_live_tsg ~seed:8 ~events:8 ~extra_arcs:5 () in
  let _, arcs1 = Helpers.graph_fingerprint g1 and _, arcs3 = Helpers.graph_fingerprint g3 in
  Alcotest.(check bool) "different seed differs" true (arcs1 <> arcs3)

let test_random_always_valid () =
  (* the generator promises live, strongly connected graphs: build_exn
     inside would have raised otherwise; also the analysis must run *)
  for seed = 0 to 30 do
    let g =
      Generators.random_live_tsg ~seed ~events:(3 + (seed mod 7)) ~extra_arcs:(seed mod 9) ()
    in
    let lambda = Cycle_time.cycle_time g in
    Alcotest.(check bool) "lambda finite and non-negative" true (lambda >= 0.)
  done

let test_random_arc_count () =
  let g = Generators.random_live_tsg ~events:12 ~extra_arcs:10 () in
  Alcotest.(check int) "backbone + chords" 22 (Signal_graph.arc_count g)

let test_fork_join () =
  let g = Generators.fork_join_tsg ~branches:[ 3; 1; 5 ] () in
  (* events: fork + join + 3 + 1 + 5 = 11; arcs: per branch len+1, plus
     the closing arc: (4 + 2 + 6) + 1 = 13 *)
  Alcotest.(check int) "events" 11 (Signal_graph.event_count g);
  Alcotest.(check int) "arcs" 13 (Signal_graph.arc_count g);
  (* closed form: longest branch + 2 *)
  Helpers.check_float "lambda = max branch + 2" 7. (Cycle_time.cycle_time g);
  (* the critical cycle runs through the longest branch only *)
  let report = Cycle_time.analyze g in
  List.iter
    (fun c -> Alcotest.(check int) "critical length" 7 (List.length c.Cycles.arc_ids))
    report.Cycle_time.critical_cycles

let test_fork_join_balanced () =
  (* all branches equal: every branch is critical *)
  let g = Generators.fork_join_tsg ~branches:[ 2; 2; 2 ] () in
  Helpers.check_float "lambda" 4. (Cycle_time.cycle_time g);
  Alcotest.(check int) "three critical cycles" 3
    (List.length (Slack.all_critical_cycles g))

let test_fork_join_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "fork_join_tsg: no branches") (fun () ->
      ignore (Generators.fork_join_tsg ~branches:[] ()));
  Alcotest.check_raises "bad length"
    (Invalid_argument "fork_join_tsg: branch length must be >= 1") (fun () ->
      ignore (Generators.fork_join_tsg ~branches:[ 2; 0 ] ()))

let test_segmented_border_is_tokens () =
  (* the whole point of the generator: the border stays exactly the
     token count no matter how many chords are added *)
  List.iter
    (fun (events, tokens, extra) ->
      let g = Generators.segmented_live_tsg ~seed:5 ~events ~tokens ~extra_arcs:extra () in
      Alcotest.(check int)
        (Printf.sprintf "border of %d/%d/%d" events tokens extra)
        tokens
        (List.length (Cut_set.border g));
      let lambda = Cycle_time.cycle_time g in
      Alcotest.(check bool) "analyzable" true (lambda >= 0.))
    [ (40, 5, 0); (40, 5, 80); (200, 12, 400); (7, 7, 20) ]

let test_segmented_deterministic () =
  let g1 = Generators.segmented_live_tsg ~seed:3 ~events:30 ~tokens:4 ~extra_arcs:25 () in
  let g2 = Generators.segmented_live_tsg ~seed:3 ~events:30 ~tokens:4 ~extra_arcs:25 () in
  Helpers.same_graph "same seed, same graph" g1 g2

let test_segmented_chords_unmarked_within_segment () =
  let g = Generators.segmented_live_tsg ~seed:9 ~events:60 ~tokens:6 ~extra_arcs:120 () in
  (* exactly [tokens] marked arcs (all on the backbone), and every
     chord goes strictly forward — the liveness invariant *)
  let marked =
    Array.fold_left
      (fun acc (a : Signal_graph.arc) -> if a.marked then acc + 1 else acc)
      0 (Signal_graph.arcs g)
  in
  Alcotest.(check int) "marked arcs = tokens" 6 marked;
  Array.iter
    (fun (a : Signal_graph.arc) ->
      if not a.marked then
        Alcotest.(check bool) "unmarked arcs go forward" true (a.arc_src < a.arc_dst))
    (Signal_graph.arcs g)

let test_complete_generator () =
  let g = Generators.complete_tsg ~events:5 () in
  Alcotest.(check int) "all ordered pairs" 20 (Signal_graph.arc_count g);
  Alcotest.(check bool) "every arc marked" true
    (Array.for_all (fun (a : Signal_graph.arc) -> a.marked) (Signal_graph.arcs g));
  (* K5 has 84 simple cycles: the exhaustive baseline is already busy *)
  Alcotest.(check int) "84 simple cycles" 84 (Tsg_baselines.Exhaustive.cycle_count g);
  let lambda = Cycle_time.cycle_time g in
  Helpers.check_float "agrees with exhaustive" (fst (Tsg_baselines.Exhaustive.cycle_time g)) lambda

let suite =
  [
    Alcotest.test_case "ring shape" `Quick test_ring_shape;
    Alcotest.test_case "ring validation" `Quick test_ring_validation;
    Alcotest.test_case "random generator is deterministic" `Quick test_random_deterministic;
    Alcotest.test_case "random graphs are always analyzable" `Quick test_random_always_valid;
    Alcotest.test_case "random arc budget" `Quick test_random_arc_count;
    Alcotest.test_case "fork/join loop" `Quick test_fork_join;
    Alcotest.test_case "balanced fork/join" `Quick test_fork_join_balanced;
    Alcotest.test_case "fork/join validation" `Quick test_fork_join_validation;
    Alcotest.test_case "segmented border = tokens" `Quick test_segmented_border_is_tokens;
    Alcotest.test_case "segmented generator is deterministic" `Quick
      test_segmented_deterministic;
    Alcotest.test_case "segmented chords stay inside a segment" `Quick
      test_segmented_chords_unmarked_within_segment;
    Alcotest.test_case "complete graph generator" `Quick test_complete_generator;
  ]
