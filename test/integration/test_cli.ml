(* End-to-end tests of the tsa command-line tool: real process spawns,
   exit codes, and the benchmark models with their known cycle times. *)

let tsa = try Sys.getenv "TSA" with Not_found -> "tsa"
let tsg_gen = try Sys.getenv "TSG_GEN" with Not_found -> "tsg-gen"
let benchmarks = try Sys.getenv "BENCHMARKS" with Not_found -> "benchmarks"

let run_exe exe args =
  let out = Filename.temp_file "tsa_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let run args = run_exe tsa args

let contains text needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length text && (String.sub text i n = needle || go (i + 1)) in
  go 0

let check_contains what text needle =
  Alcotest.(check bool) (Printf.sprintf "%s contains %S" what needle) true
    (contains text needle)

(* ------------------------------------------------------------------ *)

let test_analyze_builtin () =
  let code, text = run [ "analyze"; "fig1" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "analyze" text "cycle time = 10";
  check_contains "analyze" text "border events (cut set): {a+, b+}";
  check_contains "analyze" text "critical cycle: a+ -3-> c+ -2-> a- -3-> c- -2*-> a+"

let test_analyze_json () =
  let code, text = run [ "analyze"; "fig1"; "--json" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "json" text {|"cycle_time":10|};
  check_contains "json" text {|"border":["a+","b+"]|}

let test_analyze_parallel () =
  let code, text = run [ "analyze"; "stack"; "--jobs"; "4" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "parallel analyze" text "cycle time = 33"

let test_benchmark_models () =
  List.iter
    (fun (file, expected) ->
      let code, text = run [ "analyze"; Filename.concat benchmarks file ] in
      Alcotest.(check int) (file ^ " exit code") 0 code;
      check_contains file text ("cycle time = " ^ expected))
    [
      ("fig1.g", "10");
      ("ring5.g", "6.66667 (= 20/3)");
      ("stack66.g", "33");
      ("two_token_ring.g", "2");
      ("fork_join.g", "7");
      ("fifo2.g", "5");
      ("petrify_ring.g", "4") (* astg dialect, auto-detected *);
    ]

let test_baselines_agree () =
  let code, text = run [ "baselines"; Filename.concat benchmarks "ring5.g" ] in
  Alcotest.(check int) "exit 0" 0 code;
  let occurrences =
    List.length
      (List.filter
         (fun line -> contains line "6.66667 (= 20/3)")
         (String.split_on_char '\n' text))
  in
  Alcotest.(check int) "all six lines agree" 6 occurrences

let test_export_roundtrip () =
  let path = Filename.temp_file "export" ".g" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let code, text = run [ "export"; "ring5" ] in
      Alcotest.(check int) "export exit 0" 0 code;
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
      let code, text = run [ "analyze"; path ] in
      Alcotest.(check int) "analyze exported exit 0" 0 code;
      check_contains "roundtrip" text "cycle time = 6.66667 (= 20/3)")

let test_simulate_table () =
  let code, text = run [ "simulate"; "fig1" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "simulate" text "event";
  (* the Example 3 times appear in the table *)
  check_contains "simulate" text "11";
  check_contains "simulate" text "16"

let test_diagram () =
  let code, text = run [ "diagram"; "fig1" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "diagram" text "|~";
  check_contains "diagram" text "_|"

let test_cycles () =
  let code, text = run [ "cycles"; "fig1" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "cycles" text "4 simple cycles";
  check_contains "cycles" text "effective 10"

let test_slack_and_steady () =
  let code, text = run [ "slack"; "fig1" ] in
  Alcotest.(check int) "slack exit 0" 0 code;
  check_contains "slack" text "<== critical";
  let code, text = run [ "steady"; "ring5" ] in
  Alcotest.(check int) "steady exit 0" 0 code;
  check_contains "steady" text "pattern period:   3";
  check_contains "steady" text "6.66667 (= 20/3)"

let test_skew_and_bounds () =
  let code, text = run [ "skew"; "fig1"; "--from"; "a+"; "--to"; "c-" ] in
  Alcotest.(check int) "skew exit 0" 0 code;
  check_contains "skew" text "8";
  let code, text = run [ "bounds"; "fig1"; "--percent"; "10"; "--runs"; "0" ] in
  Alcotest.(check int) "bounds exit 0" 0 code;
  check_contains "bounds" text "[9, 11]"

let test_extract_flow () =
  let code, text = run [ "extract"; "fig1" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "extract" text "distributivity verified";
  check_contains "extract" text "c- a+ 2 token";
  check_contains "extract" text "e- a+ 2 once"

let test_vcd_output () =
  let path = Filename.temp_file "wave" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let code, _ = run [ "vcd"; "fig1"; "-o"; path ] in
      Alcotest.(check int) "exit 0" 0 code;
      let text = In_channel.with_open_text path In_channel.input_all in
      check_contains "vcd" text "$timescale 1ns $end";
      check_contains "vcd" text "$var wire 1")

let test_dot_output () =
  let code, text = run [ "dot"; "fig1" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "dot" text "digraph";
  check_contains "dot" text "label=\"c+\""

let test_pert_and_critical () =
  let code, text = run [ "pert"; Filename.concat benchmarks "project.g" ] in
  Alcotest.(check int) "pert exit 0" 0 code;
  check_contains "pert" text "makespan: 12";
  check_contains "pert" text "critical path: start+ -> order+ -> deliver+ -> build+";
  (* pert on a cyclic model fails with a pointer to analyze *)
  let code, text = run [ "pert"; "fig1" ] in
  Alcotest.(check bool) "cyclic rejected" true (code <> 0);
  check_contains "pert error" text "use Cycle_time";
  let code, text = run [ "critical"; "ring5" ] in
  Alcotest.(check int) "critical exit 0" 0 code;
  check_contains "critical" text "1 critical cycle at cycle time 6.66667 (= 20/3)";
  check_contains "critical" text "eps 3"

let test_parametric () =
  let code, text = run [ "parametric"; "fig1"; "--from"; "c+"; "--to"; "b-" ] in
  Alcotest.(check int) "exit 0" 0 code;
  check_contains "parametric" text "x >= 0      : lambda = 10";
  check_contains "parametric" text "x >= 3      : lambda = 7 + 1 x";
  check_contains "parametric" text "breakpoints at 3";
  let code, _ = run [ "parametric"; "fig1"; "--from"; "a+"; "--to"; "b-" ] in
  Alcotest.(check bool) "missing arc fails" true (code <> 0)

let test_check_and_optimize () =
  let code, text = run [ "check"; "fig1" ] in
  Alcotest.(check int) "check exit 0" 0 code;
  check_contains "check" text "switch-over correctness: ok";
  check_contains "check" text "largest token count:     1 (safe)";
  check_contains "check" text "cycle time:              10";
  check_contains "check" text "redundant arcs:          none";
  let code, text = run [ "check"; Filename.concat benchmarks "project.g" ] in
  Alcotest.(check int) "acyclic check exit 0" 0 code;
  check_contains "check acyclic" text "acyclic model (use 'tsa pert')";
  let code, text = run [ "optimize"; "fig1"; "--budget"; "2" ] in
  Alcotest.(check int) "optimize exit 0" 0 code;
  check_contains "optimize" text "final cycle time 8 after spending 2";
  let code, text = run [ "optimize"; "fig1"; "--pad"; "1.0" ] in
  Alcotest.(check int) "pad exit 0" 0 code;
  check_contains "pad" text "total padding 4; cycle time 10 (unchanged)"

let test_generator_pipeline () =
  (* generate with tsg-gen, analyse with tsa: closed forms must hold *)
  let cases =
    [
      ([ "ring"; "--events"; "12"; "--tokens"; "3" ], "cycle time = 4");
      ([ "muller"; "--stages"; "5" ], "cycle time = 6.66667 (= 20/3)");
      ([ "forkjoin"; "--branches"; "2,4" ], "cycle time = 6");
      ([ "handshake"; "--cells"; "4" ], "cycle time = 9");
      ([ "random"; "--events"; "6"; "--extra"; "4"; "--seed"; "3" ], "cycle time =");
    ]
  in
  List.iter
    (fun (gen_args, expected) ->
      let path = Filename.temp_file "gen" ".g" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let code, _ = run_exe tsg_gen (gen_args @ [ "-o"; path ]) in
          Alcotest.(check int) (String.concat " " gen_args ^ " exit") 0 code;
          let code, text = run [ "analyze"; path ] in
          Alcotest.(check int) "analyze exit" 0 code;
          check_contains (String.concat " " gen_args) text expected))
    cases;
  (* invalid parameters fail cleanly *)
  let code, text = run_exe tsg_gen [ "ring"; "--events"; "3"; "--tokens"; "9" ] in
  Alcotest.(check bool) "bad parameters fail" true (code <> 0);
  check_contains "diagnostic" text "tokens out of range"

let test_batch () =
  let files =
    List.map (Filename.concat benchmarks)
      [ "fig1.g"; "ring5.g"; "stack66.g"; "petrify_ring.g" ]
  in
  let code, text = run ([ "batch" ] @ files @ [ "--jobs"; "4" ]) in
  Alcotest.(check int) "batch exit 0" 0 code;
  (* per-file cycle times equal the single-file analyze output *)
  check_contains "batch" text "cycle time = 10";
  check_contains "batch" text "cycle time = 6.66667 (= 20/3)";
  check_contains "batch" text "cycle time = 33";
  check_contains "batch" text "cycle time = 4";
  check_contains "batch" text "4 models analyzed, 0 errors";
  let code, text = run ([ "batch" ] @ files @ [ "--jobs"; "4"; "--json" ]) in
  Alcotest.(check int) "batch --json exit 0" 0 code;
  check_contains "batch json" text {|"cycle_time":10|};
  check_contains "batch json" text {|"cycle_time":6.666666666666667|};
  check_contains "batch json" text {|"status":"ok"|};
  check_contains "batch json" text {|"succeeded":4,"failed":0|};
  check_contains "batch json" text {|"metrics":[|};
  check_contains "batch json" text {|"name":"analyze/simulate"|}

let test_batch_keeps_going_on_malformed_input () =
  let bad = Filename.temp_file "malformed" ".g" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      Out_channel.with_open_text bad (fun oc ->
          Out_channel.output_string oc ".model broken\n.graph\nnot an arc line\n.end\n");
      let files = [ Filename.concat benchmarks "fig1.g"; bad; Filename.concat benchmarks "ring5.g" ] in
      let code, text = run ([ "batch" ] @ files @ [ "--jobs"; "4" ]) in
      Alcotest.(check int) "batch with malformed input exits 0" 0 code;
      check_contains "good file before the error" text "cycle time = 10";
      check_contains "error entry" text "ERROR:";
      check_contains "good file after the error" text "cycle time = 6.66667 (= 20/3)";
      check_contains "summary" text "3 models analyzed, 1 error";
      let code, text = run ([ "batch" ] @ files @ [ "--json" ]) in
      Alcotest.(check int) "json batch with malformed input exits 0" 0 code;
      check_contains "json error entry" text {|"status":"error"|};
      check_contains "json summary" text {|"succeeded":2,"failed":1|})

let test_dialect_sniffing_ignores_comments () =
  (* regression: a native .g whose comments mention .marking used to be
     misclassified as the astg dialect and rejected *)
  let path = Filename.temp_file "sniff" ".g" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            "# native dialect: there is no .marking section in this format\n\
             .model sniff\n\
             .graph\n\
             a+ b+ 1\n\
             b+ a+ 1 token\n\
             .end\n");
      let code, text = run [ "analyze"; path ] in
      Alcotest.(check int) "native file with .marking comment analyzes" 0 code;
      check_contains "sniff" text "cycle time = 2")

let test_error_handling () =
  let code, _ = run [ "analyze"; "/nonexistent/model.g" ] in
  Alcotest.(check bool) "missing file fails" true (code <> 0);
  let code, _ = run [ "analyze" ] in
  Alcotest.(check bool) "missing argument fails" true (code <> 0);
  let code, _ = run [ "frobnicate"; "fig1" ] in
  Alcotest.(check bool) "unknown command fails" true (code <> 0);
  let bad = Filename.temp_file "bad" ".g" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      Out_channel.with_open_text bad (fun oc ->
          Out_channel.output_string oc ".graph\na+ b+ 1\nb+ a+ 1\n.end\n");
      (* token-free cycle: must fail with a diagnostic, not crash *)
      let code, text = run [ "analyze"; bad ] in
      Alcotest.(check bool) "invalid graph fails" true (code <> 0);
      check_contains "diagnostic" text "token-free cycle")

let () =
  Alcotest.run "tsa-cli"
    [
      ( "cli",
        [
          Alcotest.test_case "analyze built-in" `Quick test_analyze_builtin;
          Alcotest.test_case "analyze --json" `Quick test_analyze_json;
          Alcotest.test_case "analyze --jobs" `Quick test_analyze_parallel;
          Alcotest.test_case "benchmark models" `Quick test_benchmark_models;
          Alcotest.test_case "baselines agree" `Quick test_baselines_agree;
          Alcotest.test_case "export/analyze roundtrip" `Quick test_export_roundtrip;
          Alcotest.test_case "simulate table" `Quick test_simulate_table;
          Alcotest.test_case "diagram" `Quick test_diagram;
          Alcotest.test_case "cycles" `Quick test_cycles;
          Alcotest.test_case "slack and steady" `Quick test_slack_and_steady;
          Alcotest.test_case "skew and bounds" `Quick test_skew_and_bounds;
          Alcotest.test_case "extract flow" `Quick test_extract_flow;
          Alcotest.test_case "vcd output" `Quick test_vcd_output;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "pert and critical" `Quick test_pert_and_critical;
          Alcotest.test_case "parametric" `Quick test_parametric;
          Alcotest.test_case "check and optimize" `Quick test_check_and_optimize;
          Alcotest.test_case "tsg-gen pipeline" `Quick test_generator_pipeline;
          Alcotest.test_case "batch" `Quick test_batch;
          Alcotest.test_case "batch keeps going on malformed input" `Quick
            test_batch_keeps_going_on_malformed_input;
          Alcotest.test_case "dialect sniffing ignores comments" `Quick
            test_dialect_sniffing_ignores_comments;
          Alcotest.test_case "error handling" `Quick test_error_handling;
        ] );
    ]
