open Tsg

let fig1 () = Tsg_circuit.Circuit_library.fig1_tsg ()

(* Example 3 of the paper: the initial part of the timing simulation *)
let test_example3_table () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:2 in
  let sim = Timing_sim.simulate u in
  let t = Helpers.time_of u sim in
  List.iter
    (fun (name, period, expected) ->
      Helpers.check_float (Printf.sprintf "t(%s_%d)" name period) expected (t name period))
    [
      ("e-", 0, 0.); ("f-", 0, 3.); ("a+", 0, 2.); ("b+", 0, 4.); ("c+", 0, 6.);
      ("a-", 0, 8.); ("b-", 0, 7.); ("c-", 0, 11.);
      ("a+", 1, 13.); ("b+", 1, 12.); ("c+", 1, 16.);
    ]

(* Example 4: the b+0-initiated timing simulation *)
let test_example4_table () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:2 in
  let b0 =
    Unfolding.instance u ~event:(Signal_graph.id g (Event.of_string_exn "b+")) ~period:0
  in
  let sim = Timing_sim.simulate_initiated u ~at:b0 in
  let t = Helpers.time_of u sim in
  List.iter
    (fun (name, period, expected) ->
      Helpers.check_float (Printf.sprintf "t_b+(%s_%d)" name period) expected (t name period))
    [
      ("b+", 0, 0.); ("c+", 0, 2.); ("a-", 0, 4.); ("b-", 0, 3.); ("c-", 0, 7.);
      ("a+", 1, 9.); ("b+", 1, 8.); ("c+", 1, 12.);
    ];
  (* the concurrent/preceding events are zeroed and unreached *)
  List.iter
    (fun name ->
      Helpers.check_float (name ^ " zeroed") 0. (t name 0);
      let id = Signal_graph.id g (Event.of_string_exn name) in
      Alcotest.(check bool) (name ^ " unreached") false
        sim.Timing_sim.reached.(Unfolding.instance u ~event:id ~period:0))
    [ "e-"; "f-"; "a+" ]

(* Section VIII.C: the a+0-initiated simulation *)
let test_section8c_a_initiated () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:3 in
  let a0 =
    Unfolding.instance u ~event:(Signal_graph.id g (Event.of_string_exn "a+")) ~period:0
  in
  let sim = Timing_sim.simulate_initiated u ~at:a0 in
  let t = Helpers.time_of u sim in
  List.iter
    (fun (name, period, expected) ->
      Helpers.check_float (Printf.sprintf "t_a+(%s_%d)" name period) expected (t name period))
    [
      ("a+", 0, 0.); ("b+", 0, 0.); ("c+", 0, 3.); ("a-", 0, 5.); ("b-", 0, 4.);
      ("c-", 0, 8.); ("a+", 1, 10.); ("b+", 1, 9.); ("c-", 1, 18.);
      ("a+", 2, 20.); ("b+", 2, 19.);
    ]

let test_average_occurrence_distances () =
  (* Section II: the sequence 2, 13/2, 23/3, 33/4, 43/5, 53/6 for a+ *)
  let g = fig1 () in
  let u = Unfolding.make g ~periods:6 in
  let sim = Timing_sim.simulate u in
  let a = Signal_graph.id g (Event.of_string_exn "a+") in
  List.iteri
    (fun i expected ->
      Helpers.check_float
        (Printf.sprintf "Delta(a+_%d)" i)
        expected
        (Timing_sim.average_occurrence_distance u sim ~event:a ~period:i))
    [ 2.; 13. /. 2.; 23. /. 3.; 33. /. 4.; 43. /. 5.; 53. /. 6. ]

let test_initiated_average_distance () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:3 in
  let a = Signal_graph.id g (Event.of_string_exn "a+") in
  let sim = Timing_sim.simulate_initiated u ~at:(Unfolding.instance u ~event:a ~period:0) in
  Helpers.check_float "Delta_{a+0}(a+1)" 10.
    (Timing_sim.initiated_average_distance u sim ~event:a ~period:1);
  Helpers.check_float "Delta_{a+0}(a+2)" 10.
    (Timing_sim.initiated_average_distance u sim ~event:a ~period:2);
  Alcotest.check_raises "period 0 rejected"
    (Invalid_argument "Timing_sim.initiated_average_distance: period must be > 0") (fun () ->
      ignore (Timing_sim.initiated_average_distance u sim ~event:a ~period:0))

let test_occurrence_times () =
  let g = fig1 () in
  let u = Unfolding.make g ~periods:3 in
  let sim = Timing_sim.simulate u in
  let c = Signal_graph.id g (Event.of_string_exn "c+") in
  Alcotest.(check int) "three periods" 3
    (Array.length (Timing_sim.occurrence_times u sim ~event:c));
  let f = Signal_graph.id g (Event.of_string_exn "f-") in
  Alcotest.(check int) "non-repetitive: one" 1
    (Array.length (Timing_sim.occurrence_times u sim ~event:f))

let test_critical_path_backtracking () =
  (* Proposition 1: the simulation time equals the longest path, and
     the recorded predecessors realise it *)
  let g = fig1 () in
  let u = Unfolding.make g ~periods:2 in
  let sim = Timing_sim.simulate u in
  let c = Signal_graph.id g (Event.of_string_exn "c-") in
  let target = Unfolding.instance u ~event:c ~period:0 in
  let path = Timing_sim.critical_path u sim ~instance:target in
  (* the path must start at a source and its delays must sum to t *)
  (match path with
  | (root, None) :: _ ->
    Alcotest.(check int) "root has no in-constraint" 0
      (Tsg_graph.Digraph.in_degree (Unfolding.dag u) root)
  | _ -> Alcotest.fail "path must start with a root");
  let total =
    List.fold_left
      (fun acc (_, arc) ->
        match arc with
        | None -> acc
        | Some aid -> acc +. (Signal_graph.arc g aid).Signal_graph.delay)
      0. path
  in
  Helpers.check_float "path length = t(c-)" sim.Timing_sim.time.(target) total;
  (* e- -> a+ -> c+ -> a- -> c- is the longest path to c-_0 *)
  let names =
    List.map
      (fun (i, _) ->
        let e, p = Unfolding.event_of_instance u i in
        Printf.sprintf "%s@%d" (Event.to_string (Signal_graph.event g e)) p)
      path
  in
  Alcotest.(check (list string)) "argmax path"
    [ "e-@0"; "f-@0"; "b+@0"; "c+@0"; "a-@0"; "c-@0" ]
    names

let test_initiated_from_later_instance () =
  (* the "cyclic case" of Proposition 1: initiating at a+_1 measures
     the same distances as initiating at a+_0 shifted by one period *)
  let g = fig1 () in
  let u = Unfolding.make g ~periods:4 in
  let a = Signal_graph.id g (Event.of_string_exn "a+") in
  let from0 =
    Timing_sim.simulate_initiated u ~at:(Unfolding.instance u ~event:a ~period:0)
  in
  let from1 =
    Timing_sim.simulate_initiated u ~at:(Unfolding.instance u ~event:a ~period:1)
  in
  (* the repetitive structure repeats: t_{a1}(a_{1+k}) = t_{a0}(a_k) *)
  for k = 1 to 2 do
    Helpers.check_float
      (Printf.sprintf "t_a1(a_%d) = t_a0(a_%d)" (1 + k) k)
      from0.Timing_sim.time.(Unfolding.instance u ~event:a ~period:k)
      from1.Timing_sim.time.(Unfolding.instance u ~event:a ~period:(1 + k))
  done;
  (* instances at or before a+_1 are unreached *)
  Alcotest.(check bool) "a+_0 unreached from a+_1" false
    from1.Timing_sim.reached.(Unfolding.instance u ~event:a ~period:0)

let prop_triangular_inequality =
  (* Proposition 3: t_{e0}(e_k) >= t_{e0}(e_j) + t_{e0}(e_{k-j}) *)
  Helpers.qcheck_case ~count:60 ~name:"Proposition 3 (triangular inequality)" (fun g ->
      let border = Cut_set.border g in
      let k = 4 in
      let u = Unfolding.make g ~periods:(k + 1) in
      List.for_all
        (fun e ->
          let sim =
            Timing_sim.simulate_initiated u
              ~at:(Unfolding.instance u ~event:e ~period:0)
          in
          let t i = sim.Timing_sim.time.(Unfolding.instance u ~event:e ~period:i) in
          let ok = ref true in
          for j = 1 to k - 1 do
            if t k +. 1e-9 < t j +. t (k - j) then ok := false
          done;
          !ok)
        border)

let prop_times_monotone =
  Helpers.qcheck_case ~count:60 ~name:"occurrence times are monotone in the period" (fun g ->
      let u = Unfolding.make g ~periods:5 in
      let sim = Timing_sim.simulate u in
      List.for_all
        (fun e ->
          let times = Timing_sim.occurrence_times u sim ~event:e in
          let ok = ref true in
          for i = 0 to Array.length times - 2 do
            if times.(i) > times.(i + 1) +. 1e-9 then ok := false
          done;
          !ok)
        (Signal_graph.repetitive_events g))

let prop_initiated_below_full =
  (* an event-initiated simulation discards history, so it can only be
     earlier than the full simulation shifted by the initiation time *)
  Helpers.qcheck_case ~count:60 ~name:"event-initiated times below shifted full times"
    (fun g ->
      let u = Unfolding.make g ~periods:4 in
      let full = Timing_sim.simulate u in
      List.for_all
        (fun e ->
          let at = Unfolding.instance u ~event:e ~period:0 in
          let sim = Timing_sim.simulate_initiated u ~at in
          let ok = ref true in
          for inst = 0 to Unfolding.instance_count u - 1 do
            if sim.Timing_sim.reached.(inst) then
              if
                full.Timing_sim.time.(inst)
                +. 1e-9
                < full.Timing_sim.time.(at) +. sim.Timing_sim.time.(inst)
              then ok := false
          done;
          !ok)
        (Cut_set.border g))

(* ------------------------------------------------------------------ *)
(* Workspace arenas                                                    *)

let test_arena_fallback_metric () =
  let before = Tsg_engine.Metrics.count "kernel/arenas_fallback" in
  Timing_sim.Workspace.with_arena 64 (fun outer ->
      (* the domain's main arena is locked by the outer bracket, so a
         nested acquisition must fall back to a spare — and count it *)
      Timing_sim.Workspace.with_arena 64 (fun inner ->
          Alcotest.(check bool) "distinct arenas" true (inner != outer)));
  Alcotest.(check bool) "fallback counted" true
    (Tsg_engine.Metrics.count "kernel/arenas_fallback" > before)

let test_arena_spare_reused () =
  (* the spare released by the first nested bracket must serve the
     second one instead of allocating a fresh full-size arena *)
  Timing_sim.Workspace.with_arena 64 (fun _outer ->
      Timing_sim.Workspace.with_arena 64 (fun _inner -> ());
      let created = Tsg_engine.Metrics.count "kernel/arenas_created" in
      let reused = Tsg_engine.Metrics.count "kernel/arenas_reused" in
      Timing_sim.Workspace.with_arena 64 (fun _inner -> ());
      Alcotest.(check int)
        "no fresh arena" created
        (Tsg_engine.Metrics.count "kernel/arenas_created");
      Alcotest.(check bool) "spare reused" true
        (Tsg_engine.Metrics.count "kernel/arenas_reused" > reused))

let test_arena_retained_capacity () =
  let big = (2 * Timing_sim.Workspace.retained_capacity) + 17 in
  Timing_sim.Workspace.with_arena big (fun ws ->
      Alcotest.(check bool) "grown to request" true
        (Timing_sim.Workspace.capacity ws >= big));
  (* releasing must have bounded the retained arrays *)
  Timing_sim.Workspace.with_arena 16 (fun ws ->
      Alcotest.(check bool) "trimmed after release" true
        (Timing_sim.Workspace.capacity ws <= Timing_sim.Workspace.retained_capacity))

let suite =
  [
    Alcotest.test_case "Example 3 (timing simulation table)" `Quick test_example3_table;
    Alcotest.test_case "Example 4 (b+-initiated simulation)" `Quick test_example4_table;
    Alcotest.test_case "Section VIII.C (a+-initiated simulation)" `Quick
      test_section8c_a_initiated;
    Alcotest.test_case "Section II average occurrence distances" `Quick
      test_average_occurrence_distances;
    Alcotest.test_case "initiated average distances" `Quick test_initiated_average_distance;
    Alcotest.test_case "occurrence_times shapes" `Quick test_occurrence_times;
    Alcotest.test_case "critical-path backtracking (Proposition 1)" `Quick
      test_critical_path_backtracking;
    Alcotest.test_case "initiated from a later instance (Prop. 1 cyclic case)" `Quick
      test_initiated_from_later_instance;
    Alcotest.test_case "nested with_arena falls back and counts it" `Quick
      test_arena_fallback_metric;
    Alcotest.test_case "spare arenas are a free list, not fresh allocations" `Quick
      test_arena_spare_reused;
    Alcotest.test_case "released arenas are trimmed to retained_capacity" `Quick
      test_arena_retained_capacity;
    prop_triangular_inequality;
    prop_times_monotone;
    prop_initiated_below_full;
  ]
