(* The observability layer's tracing buffer: disabled-mode no-ops,
   span nesting and ordering, the Chrome trace-event exporter (golden
   output on hand-built events, structural checks on a real analysis
   validated through the protocol's own JSON parser). *)

open Tsg_obs

(* tracing is process-global; every test leaves it off and empty *)
let quiesce () =
  Trace.disable ();
  Trace.clear ()

let with_tracing f = Fun.protect ~finally:quiesce f

let find_spans name evs =
  List.filter_map
    (fun (ev : Trace.event) ->
      match ev.Trace.kind with
      | Trace.Span { dur_us; depth } when ev.Trace.name = name ->
        Some (ev, dur_us, depth)
      | _ -> None)
    evs

let test_disabled_is_a_no_op () =
  quiesce ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  let r = Trace.with_span "phantom" (fun () -> 6 * 7) in
  Alcotest.(check int) "with_span returns the body's value" 42 r;
  Trace.instant "ghost";
  Trace.counter "nothing" 1.;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.events ()))

let test_span_nesting_and_ordering () =
  with_tracing @@ fun () ->
  Trace.enable ();
  let r =
    Trace.with_span "outer" (fun () ->
        let a = Trace.with_span "inner1" (fun () -> 1) in
        let b = Trace.with_span "inner2" (fun () -> 2) in
        a + b)
  in
  Trace.disable ();
  Alcotest.(check int) "nested value" 3 r;
  let evs = Trace.events () in
  Alcotest.(check int) "three spans" 3 (List.length evs);
  (match List.map (fun (ev : Trace.event) -> ev.Trace.name) evs with
  | [ "outer"; "inner1"; "inner2" ] -> ()
  | names -> Alcotest.failf "wrong order: %s" (String.concat ", " names));
  let outer, outer_dur, outer_depth =
    match find_spans "outer" evs with [ x ] -> x | _ -> Alcotest.fail "one outer"
  in
  let inner, inner_dur, inner_depth =
    match find_spans "inner1" evs with [ x ] -> x | _ -> Alcotest.fail "one inner1"
  in
  Alcotest.(check int) "outer at depth 0" 0 outer_depth;
  Alcotest.(check int) "inner at depth 1" 1 inner_depth;
  Alcotest.(check bool) "inner starts after outer" true
    (inner.Trace.ts_us >= outer.Trace.ts_us);
  Alcotest.(check bool) "inner ends before outer" true
    (inner.Trace.ts_us +. inner_dur <= outer.Trace.ts_us +. outer_dur +. 1e-3)

let test_span_survives_an_exception () =
  with_tracing @@ fun () ->
  Trace.enable ();
  (try Trace.with_span "doomed" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.disable ();
  Alcotest.(check int) "span recorded on raise" 1
    (List.length (find_spans "doomed" (Trace.events ())))

let test_durations_aggregate () =
  with_tracing @@ fun () ->
  Trace.enable ();
  Trace.with_span "phase" (fun () -> ());
  Trace.with_span "phase" (fun () -> ());
  Trace.with_span "other" (fun () -> ());
  Trace.instant "noise";
  Trace.disable ();
  match Trace.durations (Trace.events ()) with
  | [ ("other", 1, t1); ("phase", 2, t2) ] ->
    Alcotest.(check bool) "non-negative totals" true (t1 >= 0. && t2 >= 0.)
  | other -> Alcotest.failf "unexpected aggregation (%d rows)" (List.length other)

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)

let test_chrome_json_golden () =
  let ev name ts_us args kind =
    { Trace.name; cat = "timesim"; ts_us; tid = 0; args; kind }
  in
  let evs =
    [
      ev "load" 0. [ ("model", "fig1") ] (Trace.Span { dur_us = 125.; depth = 0 });
      ev "cache/hit" 200.5 [] Trace.Instant;
      ev "rss" 300. [] (Trace.Counter 42.);
    ]
  in
  let expected =
    {|{"traceEvents":[|}
    ^ {|{"name":"load","cat":"timesim","ts":0.000,"pid":1,"tid":0,"ph":"X","dur":125.000,"args":{"model":"fig1"}},|}
    ^ {|{"name":"cache/hit","cat":"timesim","ts":200.500,"pid":1,"tid":0,"ph":"i","s":"t","args":{}},|}
    ^ {|{"name":"rss","cat":"timesim","ts":300.000,"pid":1,"tid":0,"ph":"C","args":{"value":42}}|}
    ^ {|],"displayTimeUnit":"ms"}|}
  in
  Alcotest.(check string) "golden Chrome trace" expected (Trace.to_chrome_json ~pid:1 evs)

let test_chrome_json_escapes () =
  let evs =
    [
      {
        Trace.name = {|a"b\c|};
        cat = "t\nab";
        ts_us = 1.;
        tid = 0;
        args = [ ("k\"", "v\\") ];
        kind = Trace.Instant;
      };
    ]
  in
  let s = Trace.to_chrome_json ~pid:1 evs in
  (match Tsg_engine.Protocol.json_of_string s with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "escaped trace does not parse: %s" msg);
  Alcotest.(check bool) "no raw quote leaks" true
    (not (String.length s = 0))

(* trace a real analysis and validate the export through the shared
   JSON reader: one span per pipeline phase, one longest-paths span
   per border event *)
let test_real_analysis_trace () =
  with_tracing @@ fun () ->
  let g = Tsg_circuit.Circuit_library.fig1_tsg () in
  Trace.enable ();
  let report = Tsg.Cycle_time.analyze g in
  Trace.disable ();
  let evs = Trace.events () in
  List.iter
    (fun phase ->
      Alcotest.(check int)
        (Printf.sprintf "one %s span" phase)
        1
        (List.length (find_spans phase evs)))
    [ "analyze"; "border"; "unfold"; "simulate"; "backtrack" ];
  Alcotest.(check int)
    "one longest-paths span per border event, plus the backtrack re-run"
    (List.length report.Tsg.Cycle_time.border + 1)
    (List.length (find_spans "longest_paths" evs));
  (* the export is well-formed JSON with one record per event *)
  match Tsg_engine.Protocol.json_of_string (Trace.to_chrome_json ~pid:1 evs) with
  | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  | Ok doc -> (
    match Tsg_engine.Protocol.member "traceEvents" doc with
    | Some (Tsg_engine.Protocol.List records) ->
      Alcotest.(check int) "one record per event" (List.length evs)
        (List.length records);
      List.iter
        (fun r ->
          match Tsg_engine.Protocol.member "ph" r with
          | Some (Tsg_engine.Protocol.String ("X" | "i" | "C")) -> ()
          | _ -> Alcotest.fail "record without a known phase letter")
        records
    | _ -> Alcotest.fail "no traceEvents array")

let test_enable_clears_previous_recording () =
  with_tracing @@ fun () ->
  Trace.enable ();
  Trace.instant "old";
  Trace.enable ();
  Trace.instant "new";
  Trace.disable ();
  match Trace.events () with
  | [ ev ] -> Alcotest.(check string) "only the new event" "new" ev.Trace.name
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

let suite =
  [
    Alcotest.test_case "disabled mode records nothing" `Quick test_disabled_is_a_no_op;
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting_and_ordering;
    Alcotest.test_case "span recorded when the body raises" `Quick
      test_span_survives_an_exception;
    Alcotest.test_case "durations aggregate by name" `Quick test_durations_aggregate;
    Alcotest.test_case "Chrome export golden" `Quick test_chrome_json_golden;
    Alcotest.test_case "Chrome export escapes strings" `Quick test_chrome_json_escapes;
    Alcotest.test_case "a real analysis traces every phase" `Quick
      test_real_analysis_trace;
    Alcotest.test_case "enable clears the previous recording" `Quick
      test_enable_clears_previous_recording;
  ]
