(* The on-disk second-tier cache: round-trips, restart survival,
   crash-safety of the tmp-then-rename publish (driven through the
   disk-cache/write failpoint), corruption tolerance, the LRU bound,
   and the byte-identity law against cold analyses. *)

open Tsg
open Tsg_engine

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsa-test-dc-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (* Disk_cache.create mkdirs it; start from a clean slate *)
  (try
     Array.iter
       (fun f -> try Unix.unlink (Filename.concat dir f) with Unix.Unix_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  dir

let with_cache ?capacity f =
  let dir = fresh_dir () in
  let dc = Disk_cache.create ~metrics_prefix:"test-dc" ?capacity ~dir () in
  Fun.protect ~finally:(fun () -> Disk_cache.close dc) (fun () -> f dir dc)

(* the entry layout is part of the on-disk contract (disk_cache.ml);
   the corruption tests write to entry files directly *)
let entry_path dir key = Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".tsc")

let add_sync dc key value =
  Disk_cache.add dc key value;
  Disk_cache.flush dc

(* ------------------------------------------------------------------ *)

let test_round_trip () =
  with_cache @@ fun _dir dc ->
  Alcotest.(check (option string)) "cold lookup misses" None (Disk_cache.find dc "k1");
  add_sync dc "k1" "payload one";
  add_sync dc "k2" (String.make 4096 'x');
  Alcotest.(check (option string))
    "k1 served back byte-identical" (Some "payload one") (Disk_cache.find dc "k1");
  Alcotest.(check (option string))
    "large payload intact"
    (Some (String.make 4096 'x'))
    (Disk_cache.find dc "k2");
  let s = Disk_cache.stats dc in
  Alcotest.(check int) "two entries on disk" 2 s.Disk_cache.length;
  Alcotest.(check int) "two writes" 2 s.Disk_cache.writes;
  Alcotest.(check int) "two hits" 2 s.Disk_cache.hits;
  Alcotest.(check int) "one miss" 1 s.Disk_cache.misses;
  Alcotest.(check int) "nothing corrupt" 0 s.Disk_cache.corrupt

let test_survives_restart () =
  let dir = fresh_dir () in
  let dc = Disk_cache.create ~metrics_prefix:"test-dc" ~dir () in
  add_sync dc "persistent" "survives the daemon";
  Disk_cache.close dc;
  (* a new instance over the same directory — a restarted replica *)
  let dc2 = Disk_cache.create ~metrics_prefix:"test-dc" ~dir () in
  Fun.protect
    ~finally:(fun () -> Disk_cache.close dc2)
    (fun () ->
      Alcotest.(check (option string))
        "entry visible after restart" (Some "survives the daemon")
        (Disk_cache.find dc2 "persistent"))

let test_crash_mid_write_leaves_no_partial_entry () =
  let dir = fresh_dir () in
  let dc = Disk_cache.create ~metrics_prefix:"test-dc" ~dir () in
  (* the failpoint fires between the tmp write and the rename — the
     worst possible kill point *)
  Tsg_obs.Failpoint.activate ~times:1 "disk-cache/write";
  Fun.protect
    ~finally:(fun () -> Tsg_obs.Failpoint.deactivate "disk-cache/write")
    (fun () -> add_sync dc "doomed" "never published");
  Alcotest.(check (option string))
    "the interrupted write is invisible" None (Disk_cache.find dc "doomed");
  Alcotest.(check int) "no entry file appeared" 0 (Disk_cache.length dc);
  let tmp_left =
    Array.exists
      (fun f -> not (Filename.check_suffix f ".tsc"))
      (Sys.readdir dir)
  in
  Alcotest.(check bool) "the orphaned tmp file is still there" true tmp_left;
  Disk_cache.close dc;
  (* restart: the startup sweep removes the orphan, and the slot is
     writable again *)
  let dc2 = Disk_cache.create ~metrics_prefix:"test-dc" ~dir () in
  Fun.protect
    ~finally:(fun () -> Disk_cache.close dc2)
    (fun () ->
      Alcotest.(check (array string))
        "startup sweep removed the orphan" [||] (Sys.readdir dir);
      add_sync dc2 "doomed" "published this time";
      Alcotest.(check (option string))
        "the slot recovered" (Some "published this time")
        (Disk_cache.find dc2 "doomed"))

let test_corrupt_entries_recompute () =
  with_cache @@ fun dir dc ->
  let corrupt_before = Metrics.count "test-dc/corrupt" in
  (* truncated payload *)
  add_sync dc "truncated" "a payload that will lose its tail";
  let path = entry_path dir "truncated" in
  Unix.truncate path ((Unix.stat path).Unix.st_size / 2);
  Alcotest.(check (option string))
    "truncated entry reads as a miss" None (Disk_cache.find dc "truncated");
  Alcotest.(check bool) "truncated file deleted" false (Sys.file_exists path);
  (* flipped payload byte: header md5 no longer matches *)
  add_sync dc "flipped" "some payload whose bytes get flipped";
  let path = entry_path dir "flipped" in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd ((Unix.stat path).Unix.st_size - 1) Unix.SEEK_SET);
  ignore (Unix.write_substring fd "?" 0 1);
  Unix.close fd;
  Alcotest.(check (option string))
    "flipped entry reads as a miss" None (Disk_cache.find dc "flipped");
  (* outright garbage where an entry should be *)
  let path = entry_path dir "garbage" in
  let oc = open_out_bin path in
  output_string oc "not a cache entry at all\n\000\001\002";
  close_out oc;
  Alcotest.(check (option string))
    "garbage entry reads as a miss" None (Disk_cache.find dc "garbage");
  let s = Disk_cache.stats dc in
  Alcotest.(check int) "three corruptions detected" 3 s.Disk_cache.corrupt;
  Alcotest.(check int)
    "disk-cache/corrupt counted each one" (corrupt_before + 3)
    (Metrics.count "test-dc/corrupt");
  Alcotest.(check int) "corrupt files all deleted" 0 s.Disk_cache.length

let test_lru_bound () =
  with_cache ~capacity:3 @@ fun dir dc ->
  (* stat mtime has one-second granularity on some filesystems; pin
     each entry's age explicitly so the LRU order is deterministic *)
  let keys = [ "e1"; "e2"; "e3"; "e4"; "e5" ] in
  List.iteri
    (fun i key ->
      add_sync dc key ("value of " ^ key);
      let age = float_of_int (1_000_000 + (i * 100)) in
      Unix.utimes (entry_path dir key) age age)
    keys;
  let s = Disk_cache.stats dc in
  Alcotest.(check int) "capacity held" 3 s.Disk_cache.length;
  Alcotest.(check int) "two evictions" 2 s.Disk_cache.evictions;
  Alcotest.(check (option string)) "oldest gone" None (Disk_cache.find dc "e1");
  Alcotest.(check (option string)) "next-oldest gone" None (Disk_cache.find dc "e2");
  Alcotest.(check (option string))
    "youngest survive" (Some "value of e5") (Disk_cache.find dc "e5");
  (* a hit refreshes the mtime, so e3 outlives the younger e4 *)
  ignore (Disk_cache.find dc "e3");
  add_sync dc "e6" "value of e6";
  Alcotest.(check (option string))
    "recently-used entry spared" (Some "value of e3") (Disk_cache.find dc "e3");
  Alcotest.(check (option string)) "least-recently-used evicted" None
    (Disk_cache.find dc "e4")

let test_read_stale_serves_without_touching () =
  with_cache @@ fun dir dc ->
  Alcotest.(check (option (pair string (float 1e9))))
    "stale read of an absent key misses" None
    (Disk_cache.read_stale dc "absent");
  add_sync dc "k" "stale but byte-exact";
  (* backdate the mtime: a v2 entry's age comes from the written_at
     header, not the LRU mtime, so the reported age stays honest even
     after hits refresh the file — and read_stale must NOT refresh the
     mtime either (a degraded read is not a use for LRU purposes) *)
  let past = Unix.gettimeofday () -. 3600. in
  Unix.utimes (entry_path dir "k") past past;
  (match Disk_cache.read_stale dc "k" with
  | None -> Alcotest.fail "stale read of a present key should serve"
  | Some (payload, age) ->
    Alcotest.(check string) "stale bytes byte-identical" "stale but byte-exact"
      payload;
    Alcotest.(check bool) "age is the write age, not the LRU mtime" true
      (age >= 0. && age < 60.));
  let mtime_after = (Unix.stat (entry_path dir "k")).Unix.st_mtime in
  Alcotest.(check bool) "read_stale did not refresh the mtime" true
    (mtime_after < Unix.gettimeofday () -. 3000.);
  let s = Disk_cache.stats dc in
  Alcotest.(check int) "the successful stale read counted" 1
    s.Disk_cache.stale_served;
  Alcotest.(check int) "stale reads are not hits" 0 s.Disk_cache.hits;
  Alcotest.(check int) "stale reads are not misses" 0 s.Disk_cache.misses;
  Alcotest.(check bool) "oldest_age_s sees the backdated entry" true
    (s.Disk_cache.oldest_age_s > 3000.);
  (* a normal find IS a use: it refreshes the mtime *)
  ignore (Disk_cache.find dc "k");
  let refreshed = (Unix.stat (entry_path dir "k")).Unix.st_mtime in
  Alcotest.(check bool) "find refreshes the mtime" true
    (refreshed > Unix.gettimeofday () -. 60.)

let test_v1_header_still_readable () =
  with_cache @@ fun dir dc ->
  (* a v1 entry written by a pre-upgrade replica: no written_at field *)
  let payload = "written before entry ages existed" in
  let oc = open_out_bin (entry_path dir "legacy") in
  Printf.fprintf oc "tsa-disk-cache/1 %s %d\n%s"
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload;
  close_out oc;
  Alcotest.(check (option string))
    "v1 entry serves through find" (Some payload) (Disk_cache.find dc "legacy");
  (* age falls back to the file mtime for v1 entries *)
  let past = Unix.gettimeofday () -. 7200. in
  Unix.utimes (entry_path dir "legacy") past past;
  (match Disk_cache.read_stale dc "legacy" with
  | None -> Alcotest.fail "v1 entry should serve through read_stale"
  | Some (served, age) ->
    Alcotest.(check string) "v1 stale bytes intact" payload served;
    Alcotest.(check bool) "v1 age falls back to the mtime" true (age > 7000.));
  Alcotest.(check int) "v1 entries are not corrupt" 0
    (Disk_cache.stats dc).Disk_cache.corrupt

let test_zero_capacity_disables_storage () =
  with_cache ~capacity:0 @@ fun dir dc ->
  Disk_cache.add dc "k" "v";
  Disk_cache.flush dc;
  Alcotest.(check (option string)) "nothing stored" None (Disk_cache.find dc "k");
  Alcotest.(check (array string)) "directory untouched" [||] (Sys.readdir dir)

(* the soundness law behind the disk tier: a response served from disk
   is byte-identical to the response a cold analysis would render *)
let qcheck_disk_hits_match_cold_analyses =
  Helpers.qcheck_case ~count:40 ~name:"disk-cache hits == cold analyses (bytes)"
    (fun g ->
      let render g =
        Tsg_io.Rpc.analyze_response ~model:"law" g (Cycle_time.analyze g)
      in
      let dir = fresh_dir () in
      let dc = Disk_cache.create ~metrics_prefix:"test-dc-law" ~dir () in
      Fun.protect
        ~finally:(fun () -> Disk_cache.close dc)
        (fun () ->
          let key = Signal_graph.digest g in
          add_sync dc key (render g);
          match Disk_cache.find dc key with
          | None -> QCheck2.Test.fail_report "stored entry did not read back"
          | Some served ->
            if served <> render g then
              QCheck2.Test.fail_report "disk-cache bytes differ from a cold analysis";
            true))

let suite =
  [
    Alcotest.test_case "round-trip through the directory" `Quick test_round_trip;
    Alcotest.test_case "entries survive a restart" `Quick test_survives_restart;
    Alcotest.test_case "kill mid-write leaves no partial entry" `Quick
      test_crash_mid_write_leaves_no_partial_entry;
    Alcotest.test_case "corrupt entries recompute cleanly" `Quick
      test_corrupt_entries_recompute;
    Alcotest.test_case "LRU bound holds and hits refresh" `Quick test_lru_bound;
    Alcotest.test_case "read_stale serves without touching" `Quick
      test_read_stale_serves_without_touching;
    Alcotest.test_case "v1 header still readable" `Quick
      test_v1_header_still_readable;
    Alcotest.test_case "capacity 0 disables storage" `Quick
      test_zero_capacity_disables_storage;
    qcheck_disk_hits_match_cold_analyses;
  ]
