open Tsg

(* the parallel path must be an exact drop-in for the sequential one *)

let same_report msg g jobs =
  let seq = Cycle_time.analyze g in
  let par = Cycle_time.analyze ~jobs g in
  Helpers.check_float (msg ^ ": lambda") seq.Cycle_time.cycle_time par.Cycle_time.cycle_time;
  Alcotest.(check int) (msg ^ ": critical event") seq.Cycle_time.critical_event
    par.Cycle_time.critical_event;
  Alcotest.(check int) (msg ^ ": critical period") seq.Cycle_time.critical_period
    par.Cycle_time.critical_period;
  Alcotest.(check (list int)) (msg ^ ": critical walk") seq.Cycle_time.critical_walk
    par.Cycle_time.critical_walk;
  Alcotest.(check int) (msg ^ ": trace count")
    (List.length seq.Cycle_time.traces)
    (List.length par.Cycle_time.traces);
  List.iter2
    (fun (t1 : Cycle_time.border_trace) t2 ->
      Alcotest.(check int) (msg ^ ": trace event") t1.Cycle_time.border_event
        t2.Cycle_time.border_event;
      List.iter2
        (fun (s1 : Cycle_time.sample) s2 ->
          Helpers.check_float (msg ^ ": sample time") s1.Cycle_time.time s2.Cycle_time.time)
        t1.Cycle_time.samples t2.Cycle_time.samples)
    seq.Cycle_time.traces par.Cycle_time.traces

let test_fig1_parallel () = same_report "fig1" (Tsg_circuit.Circuit_library.fig1_tsg ()) 4

let test_ring_parallel () =
  same_report "ring5" (Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:5 ()) 3

let test_stack_parallel () =
  same_report "stack66" (Tsg_circuit.Circuit_library.async_stack_tsg ()) 8

let test_more_jobs_than_border_events () =
  (* jobs is clamped to the work available *)
  same_report "tiny" (Tsg_circuit.Generators.ring_tsg ~events:4 ~tokens:1 ()) 16

let test_speedup_smoke () =
  (* not a performance assertion (CI machines vary), just that the
     parallel path completes on a graph big enough to exercise it *)
  let g = Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:48 () in
  let l1 = Cycle_time.cycle_time g in
  let l4 = Cycle_time.cycle_time ~jobs:4 g in
  Helpers.check_float "same lambda on 48-stage ring" l1 l4

let test_parallel_map_basic () =
  let xs = Array.init 100 Fun.id in
  Alcotest.(check (array int)) "order preserved"
    (Array.map (fun x -> x * x) xs)
    (Parallel.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (array int)) "jobs=1 inline" (Array.map succ xs)
    (Parallel.map ~jobs:1 succ xs);
  Alcotest.(check (array int)) "empty input" [||] (Parallel.map ~jobs:4 succ [||])

let test_parallel_map_exceptions () =
  let raised =
    try
      ignore
        (Parallel.map ~jobs:4
           (fun x -> if x = 17 then invalid_arg "boom" else x)
           (Array.init 64 Fun.id));
      false
    with Invalid_argument msg -> msg = "boom"
  in
  Alcotest.(check bool) "worker exception reraised" true raised

let test_monte_carlo_parallel_deterministic () =
  let g = Tsg_circuit.Circuit_library.fig1_tsg () in
  let sampler = Monte_carlo.uniform_jitter g ~percent:15. in
  let s1 = Monte_carlo.estimate ~seed:3 ~runs:12 ~periods:30 ~jobs:1 g ~sampler in
  let s4 = Monte_carlo.estimate ~seed:3 ~runs:12 ~periods:30 ~jobs:4 g ~sampler in
  Helpers.check_float "same mean across job counts" s1.Monte_carlo.mean s4.Monte_carlo.mean;
  Helpers.check_float "same std across job counts" s1.Monte_carlo.std s4.Monte_carlo.std

let prop_parallel_equals_sequential =
  Helpers.qcheck_case ~count:40 ~name:"parallel analysis equals sequential" (fun g ->
      let seq = Cycle_time.analyze g in
      let par = Cycle_time.analyze ~jobs:4 g in
      Helpers.float_close seq.Cycle_time.cycle_time par.Cycle_time.cycle_time
      && seq.Cycle_time.critical_walk = par.Cycle_time.critical_walk)

let prop_reports_byte_identical =
  (* stronger than value equality: the full serialised report — every
     trace sample, every float digit — must not depend on [jobs], no
     matter how the claims were scheduled *)
  Helpers.qcheck_case ~count:30 ~name:"serialised reports byte-identical across jobs"
    (fun g ->
      let render jobs =
        (* analysis_obj, not analysis: the latter appends live
           wall-clock metrics, which are never byte-stable *)
        Tsg_io.Json.to_string (Tsg_io.Json_report.analysis_obj g (Cycle_time.analyze ~jobs g))
      in
      let reference = render 1 in
      List.for_all
        (fun jobs -> String.equal reference (render jobs))
        (List.sort_uniq compare [ 2; Tsg_engine.Pool.recommended () ]))

let test_deadline_cancel_mid_batch () =
  let g = Tsg_circuit.Circuit_library.async_stack_tsg () in
  let border = Cut_set.border g in
  let u = Unfolding.make g ~periods:(List.length border + 1) in
  Unfolding.warm_caches u;
  let roots =
    Array.of_list (List.map (fun e -> Unfolding.instance u ~event:e ~period:0) border)
  in
  let deadline = Tsg_engine.Deadline.make () in
  let seen = Atomic.make 0 in
  let cancelled =
    match
      Timing_sim.simulate_many ~deadline ~jobs:4 u ~roots
        ~f:(fun _ _ ->
          (* cancel from inside the batch after a few claims: the
             remaining claims must observe the shared deadline at the
             top of their kernel window and give up *)
          if Atomic.fetch_and_add seen 1 = 2 then Tsg_engine.Deadline.cancel deadline)
    with
    | _ -> false
    | exception Tsg_engine.Deadline.Deadline_exceeded -> true
  in
  Alcotest.(check bool) "batch cancelled mid-flight" true cancelled;
  (* a cancelled batch must not poison the shared pool: the very next
     parallel analysis reuses it and must succeed *)
  same_report "analysis after cancelled batch" g 4

let test_map_claims_order () =
  let pool = Tsg_engine.Pool.default () in
  let xs = Array.init 10 Fun.id in
  (* a reversed claim schedule must not change where results land *)
  let order = Array.init 10 (fun k -> 9 - k) in
  Alcotest.(check (array int)) "results land at input index"
    (Array.map (fun x -> x * 10) xs)
    (Tsg_engine.Pool.map_claims ~order pool
       ~with_ctx:(fun k -> k 10)
       ~f:(fun c x -> c * x)
       xs);
  match
    Tsg_engine.Pool.map_claims ~order:[| 0; 1 |] pool
      ~with_ctx:(fun k -> k ())
      ~f:(fun () x -> x)
      xs
  with
  | _ -> Alcotest.fail "short order accepted"
  | exception Invalid_argument _ -> ()

let test_map_claims_metrics () =
  let claims = Tsg_engine.Metrics.count "pool/claims" in
  let xs = Array.init 50 Fun.id in
  ignore (Parallel.map ~jobs:4 (fun x -> x + 1) xs);
  Alcotest.(check int) "every item claimed exactly once" (claims + 50)
    (Tsg_engine.Metrics.count "pool/claims")

let suite =
  [
    Alcotest.test_case "fig1" `Quick test_fig1_parallel;
    Alcotest.test_case "Muller ring" `Quick test_ring_parallel;
    Alcotest.test_case "stack66" `Quick test_stack_parallel;
    Alcotest.test_case "more jobs than border events" `Quick
      test_more_jobs_than_border_events;
    Alcotest.test_case "48-stage ring smoke" `Quick test_speedup_smoke;
    Alcotest.test_case "Parallel.map basics" `Quick test_parallel_map_basic;
    Alcotest.test_case "Parallel.map exceptions" `Quick test_parallel_map_exceptions;
    Alcotest.test_case "parallel Monte Carlo is deterministic" `Quick
      test_monte_carlo_parallel_deterministic;
    Alcotest.test_case "deadline cancel mid-batch leaves the pool reusable" `Quick
      test_deadline_cancel_mid_batch;
    Alcotest.test_case "Pool.map_claims order schedule" `Quick test_map_claims_order;
    Alcotest.test_case "Pool.map_claims claim accounting" `Quick test_map_claims_metrics;
    prop_parallel_equals_sequential;
    prop_reports_byte_identical;
  ]
