(* The content-addressed result cache: canonical digests, LRU policy,
   counters, and agreement of cached with uncached analysis. *)

open Tsg
open Tsg_engine

(* fig1-ish oscillator described twice with different declaration
   orders; same graph, so same canonical form and digest *)
let two_event_ring ~order ~delay_ab =
  let a = Event.rise "a" and b = Event.rise "b" in
  let events =
    let decls = [ (a, Signal_graph.Repetitive); (b, Signal_graph.Repetitive) ] in
    if order = `Forward then decls else List.rev decls
  in
  let arcs =
    let decls = [ (a, b, delay_ab, false); (b, a, 3.0, true) ] in
    if order = `Forward then decls else List.rev decls
  in
  Signal_graph.of_arcs ~events ~arcs

let test_digest_stable_under_reordering () =
  let g1 = two_event_ring ~order:`Forward ~delay_ab:2.0 in
  let g2 = two_event_ring ~order:`Reversed ~delay_ab:2.0 in
  Alcotest.(check string)
    "same canonical form"
    (Signal_graph.canonical_form g1)
    (Signal_graph.canonical_form g2);
  Alcotest.(check string) "same digest" (Signal_graph.digest g1) (Signal_graph.digest g2)

let test_digest_distinguishes_content () =
  let g1 = two_event_ring ~order:`Forward ~delay_ab:2.0 in
  let g2 = two_event_ring ~order:`Forward ~delay_ab:2.5 in
  Alcotest.(check bool)
    "different delay, different digest" false
    (Signal_graph.digest g1 = Signal_graph.digest g2)

let test_digest_exact_on_close_delays () =
  (* decimal printing would merge delays closer than its precision;
     the hex canonical form must not *)
  let d = 2.0 in
  let d' = Float.succ d in
  let g1 = two_event_ring ~order:`Forward ~delay_ab:d in
  let g2 = two_event_ring ~order:`Forward ~delay_ab:d' in
  Alcotest.(check bool)
    "adjacent floats get distinct digests" false
    (Signal_graph.digest g1 = Signal_graph.digest g2)

(* ------------------------------------------------------------------ *)
(* LRU policy                                                          *)

let test_lru_eviction_order () =
  let c = Cache.create ~metrics_prefix:"test-lru" ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* touch "a" so "b" is the least recently used *)
  Alcotest.(check (option int)) "a cached" (Some 1) (Cache.find c "a");
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions;
  Alcotest.(check int) "two entries" 2 (Cache.length c)

let test_lru_replace_does_not_evict () =
  let c = Cache.create ~metrics_prefix:"test-replace" ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "a" 10;
  Alcotest.(check (option int)) "replaced value" (Some 10) (Cache.find c "a");
  Alcotest.(check (option int)) "b untouched" (Some 2) (Cache.find c "b");
  Alcotest.(check int) "no eviction" 0 (Cache.stats c).Cache.evictions

let test_hit_miss_counters () =
  let prefix = "test-counters" in
  let hits0 = Metrics.count (prefix ^ "/hits") in
  let misses0 = Metrics.count (prefix ^ "/misses") in
  let c = Cache.create ~metrics_prefix:prefix ~capacity:4 () in
  ignore (Cache.find c "k");
  Cache.add c "k" 7;
  ignore (Cache.find c "k");
  ignore (Cache.find c "k");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "metrics hits" (hits0 + 2) (Metrics.count (prefix ^ "/hits"));
  Alcotest.(check int) "metrics misses" (misses0 + 1) (Metrics.count (prefix ^ "/misses"))

let test_find_or_add_computes_once () =
  let c = Cache.create ~metrics_prefix:"test-foa" ~capacity:4 () in
  let computed = ref 0 in
  let compute () =
    incr computed;
    !computed * 100
  in
  Alcotest.(check int) "computed on miss" 100 (Cache.find_or_add c "k" compute);
  Alcotest.(check int) "served on hit" 100 (Cache.find_or_add c "k" compute);
  Alcotest.(check int) "one computation" 1 !computed

let test_zero_capacity_disables () =
  let c = Cache.create ~metrics_prefix:"test-zero" ~capacity:0 () in
  Cache.add c "k" 1;
  Alcotest.(check (option int)) "nothing stored" None (Cache.find c "k");
  Alcotest.(check int) "empty" 0 (Cache.length c)

let test_clear () =
  let c = Cache.create ~metrics_prefix:"test-clear" ~capacity:4 () in
  Cache.add c "k" 1;
  ignore (Cache.find c "k");
  Cache.clear c;
  Alcotest.(check int) "no entries" 0 (Cache.length c);
  let s = Cache.stats c in
  Alcotest.(check int) "hits reset" 0 s.Cache.hits;
  (* the post-clear lookup below is the first counted event *)
  Alcotest.(check (option int)) "entry gone" None (Cache.find c "k");
  Alcotest.(check int) "misses restart" 1 (Cache.stats c).Cache.misses

(* ------------------------------------------------------------------ *)
(* Batch ?cache                                                        *)

let test_batch_cache_dedups_sweep () =
  let runs = Atomic.make 0 in
  let f x =
    Atomic.incr runs;
    Ok (x * 10)
  in
  let cache = Cache.create ~metrics_prefix:"test-batch" ~capacity:8 () in
  let entries =
    Batch.run ~jobs:3 ~cache ~label:string_of_int ~f [ 1; 2; 1; 3; 2; 1 ]
  in
  Alcotest.(check int) "six entries" 6 (List.length entries);
  Alcotest.(check int) "three analyses" 3 (Atomic.get runs);
  List.iter2
    (fun x (e : _ Batch.entry) ->
      Alcotest.(check string) "label" (string_of_int x) e.Batch.label;
      match e.Batch.outcome with
      | Ok v -> Alcotest.(check int) "value" (x * 10) v
      | Error msg -> Alcotest.failf "unexpected error: %s" msg)
    [ 1; 2; 1; 3; 2; 1 ] entries;
  (* a second sweep over the same labels is served from the cache *)
  let entries2 = Batch.run ~jobs:3 ~cache ~label:string_of_int ~f [ 3; 1 ] in
  Alcotest.(check int) "still three analyses" 3 (Atomic.get runs);
  Alcotest.(check int) "second sweep complete" 2 (List.length entries2)

let test_batch_cache_remembers_errors () =
  let runs = Atomic.make 0 in
  let f _ =
    Atomic.incr runs;
    Error "always fails"
  in
  let cache = Cache.create ~metrics_prefix:"test-batch-err" ~capacity:8 () in
  let check_failed entries =
    List.iter
      (fun (e : _ Batch.entry) ->
        Alcotest.(check bool) "failed" true (Result.is_error e.Batch.outcome))
      entries
  in
  check_failed (Batch.run ~jobs:2 ~cache ~label:string_of_int ~f [ 1; 1 ]);
  check_failed (Batch.run ~jobs:2 ~cache ~label:string_of_int ~f [ 1 ]);
  Alcotest.(check int) "failure computed once" 1 (Atomic.get runs)

(* ------------------------------------------------------------------ *)
(* Cached analysis agrees with uncached analysis                       *)

let prop_cached_analysis_agrees =
  let cache = Cache.create ~metrics_prefix:"test-prop" ~capacity:64 () in
  Helpers.qcheck_case ~count:60 ~name:"cached and uncached Cycle_time.analyze agree"
    (fun g ->
      let uncached = Cycle_time.analyze g in
      let key = Signal_graph.digest g in
      let cached = Cache.find_or_add cache key (fun () -> Cycle_time.analyze g) in
      let again = Cache.find_or_add cache key (fun () -> Alcotest.fail "recomputed") in
      Helpers.float_close uncached.Cycle_time.cycle_time cached.Cycle_time.cycle_time
      && Helpers.float_close uncached.Cycle_time.cycle_time again.Cycle_time.cycle_time
      && Cycle_time.check_walk g cached)

let suite =
  [
    Alcotest.test_case "digest stable under declaration reordering" `Quick
      test_digest_stable_under_reordering;
    Alcotest.test_case "digest distinguishes content" `Quick test_digest_distinguishes_content;
    Alcotest.test_case "digest exact on adjacent floats" `Quick test_digest_exact_on_close_delays;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "replacing a key does not evict" `Quick test_lru_replace_does_not_evict;
    Alcotest.test_case "hit/miss counters (cache + metrics)" `Quick test_hit_miss_counters;
    Alcotest.test_case "find_or_add computes once" `Quick test_find_or_add_computes_once;
    Alcotest.test_case "zero capacity disables storage" `Quick test_zero_capacity_disables;
    Alcotest.test_case "clear resets entries and counters" `Quick test_clear;
    Alcotest.test_case "Batch ?cache dedups a sweep" `Quick test_batch_cache_dedups_sweep;
    Alcotest.test_case "Batch ?cache remembers errors" `Quick test_batch_cache_remembers_errors;
    prop_cached_analysis_agrees;
  ]
