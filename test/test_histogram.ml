(* Latency histograms: bucket assignment, percentile estimation (a
   qcheck property pins p50 <= p95 <= p99 <= max), reset, and the
   Metrics registry integration used by the daemon's stats response. *)

open Tsg_obs

let test_bucket_assignment () =
  let h = Histogram.create ~bounds:[| 1.; 10.; 100. |] () in
  List.iter (Histogram.observe h) [ 0.5; 1.; 5.; 10.; 99.; 1000. ];
  let s = Histogram.snapshot h in
  Alcotest.(check int) "count" 6 s.Histogram.count;
  (* <=1 | <=10 | <=100 | overflow *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 1 |] s.Histogram.counts;
  Alcotest.(check (float 1e-9)) "min" 0.5 s.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" 1000. s.Histogram.max;
  Alcotest.(check (float 1e-9)) "sum" 1115.5 s.Histogram.sum

let test_known_percentiles () =
  let h = Histogram.create ~bounds:[| 1.; 2.; 5.; 10. |] () in
  (* 100 observations: 50 in <=1, 40 in <=5, 10 in <=10 *)
  for _ = 1 to 50 do Histogram.observe h 0.5 done;
  for _ = 1 to 40 do Histogram.observe h 3. done;
  for _ = 1 to 10 do Histogram.observe h 8. done;
  let s = Histogram.snapshot h in
  Alcotest.(check (float 1e-9)) "p50 is the first bucket's bound" 1.
    (Histogram.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p90 reaches the 5ms bucket" 5.
    (Histogram.percentile s 90.);
  Alcotest.(check (float 1e-9)) "p99 is clamped to the observed max" 8.
    (Histogram.percentile s 99.);
  Alcotest.(check (float 1e-9)) "p100 is exactly the max" 8.
    (Histogram.percentile s 100.);
  Alcotest.(check (float 1e-9)) "mean" ((50. *. 0.5 +. 40. *. 3. +. 10. *. 8.) /. 100.)
    (Histogram.mean s)

let test_empty_histogram () =
  let s = Histogram.snapshot (Histogram.create ()) in
  Alcotest.(check int) "empty count" 0 s.Histogram.count;
  Alcotest.(check bool) "nan percentile" true (Float.is_nan (Histogram.percentile s 50.));
  Alcotest.(check bool) "nan mean" true (Float.is_nan (Histogram.mean s))

let test_invalid_arguments () =
  Alcotest.check_raises "empty bounds" (Invalid_argument "Histogram.create: no buckets")
    (fun () -> ignore (Histogram.create ~bounds:[||] ()));
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Histogram.create: bounds must be strictly increasing") (fun () ->
      ignore (Histogram.create ~bounds:[| 1.; 1. |] ()));
  let s = Histogram.snapshot (Histogram.create ()) in
  Alcotest.check_raises "percentile out of range"
    (Invalid_argument "Histogram.percentile: p outside 0..100") (fun () ->
      ignore (Histogram.percentile s 101.))

let test_reset () =
  let h = Histogram.create () in
  Histogram.observe h 3.;
  Histogram.observe h 7.;
  Alcotest.(check int) "observed" 2 (Histogram.count h);
  Histogram.reset h;
  Alcotest.(check int) "forgotten" 0 (Histogram.count h);
  Histogram.observe h 1.;
  let s = Histogram.snapshot h in
  Alcotest.(check int) "usable after reset" 1 s.Histogram.count;
  Alcotest.(check (float 1e-9)) "fresh min" 1. s.Histogram.min

(* percentile estimates are monotone in p and never exceed the
   observed maximum — the invariant the daemon's stats response
   relies on *)
let percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"p50 <= p95 <= p99 <= max"
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 10_000.))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = Histogram.create () in
      List.iter (fun v -> Histogram.observe h (Float.abs v)) samples;
      let s = Histogram.snapshot h in
      let p50 = Histogram.percentile s 50.
      and p95 = Histogram.percentile s 95.
      and p99 = Histogram.percentile s 99. in
      p50 <= p95 && p95 <= p99 && p99 <= s.Histogram.max)

let test_metrics_integration () =
  Tsg_engine.Metrics.reset ();
  Tsg_engine.Metrics.observe_ms "itest/ms" 1.;
  Tsg_engine.Metrics.observe_ms "itest/ms" 3.;
  ignore (Tsg_engine.Metrics.time_hist "itest/ms" (fun () -> ()));
  (* observe_ms doubles as add_ms: totals and counts agree *)
  Alcotest.(check int) "counter side" 3 (Tsg_engine.Metrics.count "itest/ms");
  (match Tsg_engine.Metrics.histograms () with
  | [ ("itest/ms", s) ] ->
    Alcotest.(check int) "histogram side" 3 s.Histogram.count;
    Alcotest.(check bool) "percentile available" true
      (not (Float.is_nan (Histogram.percentile s 50.)))
  | hs -> Alcotest.failf "expected one histogram, got %d" (List.length hs));
  Tsg_engine.Metrics.reset ();
  Alcotest.(check int) "reset forgets histograms" 0
    (List.length (Tsg_engine.Metrics.histograms ()))

let suite =
  [
    Alcotest.test_case "bucket assignment" `Quick test_bucket_assignment;
    Alcotest.test_case "known-data percentiles" `Quick test_known_percentiles;
    Alcotest.test_case "empty histogram" `Quick test_empty_histogram;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
    Alcotest.test_case "reset" `Quick test_reset;
    QCheck_alcotest.to_alcotest percentile_monotone;
    Alcotest.test_case "Metrics registry integration" `Quick test_metrics_integration;
  ]
