(* The client-side shard router: rendezvous determinism, routing over
   a live TCP fleet (reusing test_server's handler), failover when a
   replica dies mid-run, admission shedding and deadline refusal. *)

open Tsg_engine

let analyze_req = Test_server.analyze_req
let parse_response = Test_server.parse_response
let status = Test_server.status
let bench = Test_server.bench

let shard_name r i = Server.endpoint_to_string (List.nth (Router.endpoints r) i)

(* ------------------------------------------------------------------ *)
(* Pure hashing: no servers involved                                   *)

let fake_endpoints = List.map (fun p -> Server.Unix_socket p) [ "/a"; "/b"; "/c"; "/d" ]

let test_rendezvous_is_deterministic () =
  let r1 = Router.create fake_endpoints in
  let r2 = Router.create (List.rev fake_endpoints) in
  let keys = List.init 64 (fun i -> Printf.sprintf "digest-%d" (i * 37)) in
  List.iter
    (fun key ->
      (* the home shard is a property of (key, shard names), not of
         the order the endpoints were listed in *)
      Alcotest.(check string)
        (Printf.sprintf "home of %s is order-independent" key)
        (shard_name r1 (Router.home r1 key))
        (shard_name r2 (Router.home r2 key));
      Alcotest.(check (list int))
        "rank is a permutation of the shard indices"
        (List.init 4 Fun.id)
        (List.sort compare (Router.rank r1 key)))
    keys;
  (* rendezvous spreads keys: every shard is home to some key *)
  let homes = List.map (Router.home r1) keys in
  List.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns at least one key" i)
        true
        (List.mem i homes))
    fake_endpoints

let test_removing_a_shard_only_moves_its_keys () =
  (* the consistent-hashing property: dropping /d only reassigns keys
     whose home was /d — everyone else keeps their shard *)
  let r_all = Router.create fake_endpoints in
  let survivors = List.filter (fun ep -> ep <> Server.Unix_socket "/d") fake_endpoints in
  let r_less = Router.create survivors in
  let keys = List.init 128 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter
    (fun key ->
      let before = shard_name r_all (Router.home r_all key) in
      let after = shard_name r_less (Router.home r_less key) in
      if before <> "/d" then
        Alcotest.(check string) "unaffected key stayed home" before after)
    keys

(* ------------------------------------------------------------------ *)
(* A live TCP fleet (in-process replicas)                              *)

let start_tcp_server () =
  let cache = Cache.create ~metrics_prefix:"test-router" ~capacity:32 () in
  let bound = ref None in
  let thread =
    Thread.create
      (fun () ->
        Server.serve
          ~on_ready:(fun ep -> bound := Some ep)
          ~endpoint:(Server.Tcp { host = "127.0.0.1"; port = 0 })
          ~handler:(Test_server.make_handler cache) ())
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while !bound = None && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  match !bound with
  | None -> Alcotest.fail "TCP replica never became ready"
  | Some ep -> (thread, ep)

let stop_server (thread, ep) =
  (try ignore (Server.call ~endpoint:ep [ {|{"op":"shutdown"}|} ])
   with Unix.Unix_error _ | Failure _ -> ());
  Thread.join thread

let with_fleet n f =
  let servers = List.init n (fun _ -> start_tcp_server ()) in
  Fun.protect
    ~finally:(fun () -> List.iter stop_server servers)
    (fun () -> f servers)

let route_ok r ~key request =
  match Router.route r ~key request with
  | Ok response -> response
  | Error e -> Alcotest.failf "route failed: %s" e

let test_route_over_live_fleet () =
  with_fleet 3 @@ fun servers ->
  let eps = List.map snd servers in
  let r = Router.create ~retries:1 ~backoff_ms:10. eps in
  let req = analyze_req (bench "fig1.g") in
  let key = "fig1-digest" in
  let via_router = route_ok r ~key req in
  Alcotest.(check string) "routed response ok" "ok" (status (parse_response via_router));
  (* byte-identity with a direct call to the home replica *)
  let home_ep = List.nth eps (Router.home r key) in
  (match Server.call ~endpoint:home_ep [ req ] with
  | [ direct ] ->
    Alcotest.(check string) "router adds nothing to the bytes" direct via_router
  | _ -> Alcotest.fail "expected one direct response");
  (* same key, same bytes, no rerouting while the fleet is healthy *)
  Alcotest.(check string) "second routed call identical" via_router
    (route_ok r ~key req);
  let s = Router.stats r in
  Alcotest.(check int) "two routed requests" 2 s.Router.requests;
  Alcotest.(check int) "no rerouting in a healthy fleet" 0 s.Router.rerouted;
  Alcotest.(check int) "no failovers in a healthy fleet" 0 s.Router.failovers

let test_failover_when_replica_dies () =
  with_fleet 3 @@ fun servers ->
  let eps = List.map snd servers in
  let r = Router.create ~retries:1 ~backoff_ms:10. eps in
  let req = analyze_req (bench "ring5.g") in
  let key = "ring5-digest" in
  let before = route_ok r ~key req in
  (* kill the key's home replica — the worst-case victim *)
  let home = Router.home r key in
  stop_server (List.nth servers home);
  let after = route_ok r ~key req in
  Alcotest.(check string) "failover response still ok" "ok"
    (status (parse_response after));
  Alcotest.(check string) "failover response byte-identical" before after;
  let s = Router.stats r in
  Alcotest.(check bool) "the dead replica cost a failover" true (s.Router.failovers >= 1);
  Alcotest.(check bool) "the request was rerouted off its home" true
    (s.Router.rerouted >= 1);
  let dead = List.nth s.Router.shards home in
  Alcotest.(check bool) "dead shard marked unhealthy" false dead.Router.healthy;
  (* with the home marked down, the next request skips it outright:
     no new failover, one more reroute *)
  let failovers_before = s.Router.failovers in
  Alcotest.(check string) "routing keeps working" before (route_ok r ~key req);
  let s = Router.stats r in
  Alcotest.(check int) "cooldown skips the dead shard without a failover"
    failovers_before s.Router.failovers

let test_broadcast () =
  with_fleet 2 @@ fun servers ->
  let eps = List.map snd servers in
  let r = Router.create ~retries:1 ~backoff_ms:10. eps in
  let replies = Router.broadcast r {|{"op":"stats"}|} in
  Alcotest.(check int) "one reply per replica" 2 (List.length replies);
  List.iter
    (fun (_, result) ->
      match result with
      | Ok resp -> Alcotest.(check string) "stats ok" "ok" (status (parse_response resp))
      | Error e -> Alcotest.failf "broadcast leg failed: %s" e)
    replies;
  stop_server (List.nth servers 0);
  let replies = Router.broadcast r {|{"op":"stats"}|} in
  let ok_count =
    List.length (List.filter (fun (_, res) -> Result.is_ok res) replies)
  in
  Alcotest.(check int) "dead replica reported per-shard, not fatally" 1 ok_count

let test_saturated_fleet_sheds () =
  with_fleet 1 @@ fun servers ->
  let eps = List.map snd servers in
  let r = Router.create ~max_inflight:0 eps in
  match Router.route r ~key:"k" (analyze_req (bench "fig1.g")) with
  | Ok _ -> Alcotest.fail "a saturated fleet must shed, not serve"
  | Error e ->
    let has_sub needle =
      let n = String.length needle and len = String.length e in
      let rec go i = i + n <= len && (String.sub e i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "the error names the condition" true
      (has_sub "no shard available")

let test_probe_restores_restarted_replica () =
  with_fleet 2 @@ fun servers ->
  let eps = List.map snd servers in
  (* cooldown of a minute: within this test, only the active probe can
     restore a shard — routing's half-open retry never gets a chance *)
  let r =
    Router.create ~retries:0 ~backoff_ms:5. ~cooldown_s:60. ~probe_ms:40. eps
  in
  Fun.protect ~finally:(fun () -> Router.close r) @@ fun () ->
  let req = analyze_req (bench "fig1.g") in
  let key = "probe-digest" in
  ignore (route_ok r ~key req);
  let home = Router.home r key in
  stop_server (List.nth servers home);
  (* the next request fails over and marks the home shard down *)
  ignore (route_ok r ~key req);
  let s = Router.stats r in
  Alcotest.(check bool) "home marked unhealthy" false
    (List.nth s.Router.shards home).Router.healthy;
  let requests_before = s.Router.requests in
  (* resurrect a replica on the same port *)
  let port =
    match List.nth eps home with
    | Server.Tcp { port; _ } -> port
    | _ -> Alcotest.fail "expected a TCP endpoint"
  in
  let cache = Cache.create ~metrics_prefix:"test-router-probe" ~capacity:8 () in
  let bound = ref None in
  let thread =
    Thread.create
      (fun () ->
        Server.serve
          ~on_ready:(fun ep -> bound := Some ep)
          ~endpoint:(Server.Tcp { host = "127.0.0.1"; port })
          ~handler:(Test_server.make_handler cache) ())
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while !bound = None && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  (match !bound with
  | None -> Alcotest.fail "replacement replica never became ready"
  | Some _ -> ());
  Fun.protect ~finally:(fun () -> stop_server (thread, List.nth eps home))
  @@ fun () ->
  (* no routing traffic from here on: recovery must come from the
     probe alone *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    let s = Router.stats r in
    if (List.nth s.Router.shards home).Router.healthy then s
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "probe never restored the restarted shard"
    else begin
      Thread.delay 0.02;
      wait ()
    end
  in
  let s = wait () in
  Alcotest.(check int) "no routed request was needed" requests_before
    s.Router.requests;
  (* and routing to the home works again without a failover *)
  let failovers_before = s.Router.failovers in
  Alcotest.(check string) "restored shard serves" "ok"
    (status (parse_response (route_ok r ~key req)));
  let s = Router.stats r in
  Alcotest.(check int) "no failover after recovery" failovers_before
    s.Router.failovers

let test_expired_deadline_refused_before_dialing () =
  let r = Router.create fake_endpoints in
  let d = Deadline.make ~budget_ms:0.001 () in
  Unix.sleepf 0.01;
  Deadline.with_deadline d (fun () ->
      match Router.route r ~key:"k" {|{"op":"stats"}|} with
      | Ok _ -> Alcotest.fail "an expired deadline must not be served"
      | Error e ->
        Alcotest.(check bool) "deadline error surfaced" true
          (String.length e > 0))

let suite =
  [
    Alcotest.test_case "rendezvous hashing is deterministic" `Quick
      test_rendezvous_is_deterministic;
    Alcotest.test_case "removing a shard only moves its keys" `Quick
      test_removing_a_shard_only_moves_its_keys;
    Alcotest.test_case "routing over a live TCP fleet" `Quick test_route_over_live_fleet;
    Alcotest.test_case "failover when a replica dies" `Quick
      test_failover_when_replica_dies;
    Alcotest.test_case "broadcast reaches every replica" `Quick test_broadcast;
    Alcotest.test_case "saturated fleet sheds instead of queueing" `Quick
      test_saturated_fleet_sheds;
    Alcotest.test_case "active probe restores a restarted replica" `Quick
      test_probe_restores_restarted_replica;
    Alcotest.test_case "expired deadline refused before dialing" `Quick
      test_expired_deadline_refused_before_dialing;
  ]
