(* The pre-windowing simulation kernel, kept verbatim as a reference:
   full-scan longest paths with a separate reachability DFS and fresh
   arrays per query.  The production kernel (fused reachability, topo
   windows, reused arenas) must agree with it bit for bit — on the
   simulation arrays and on whole analysis reports. *)

open Tsg

(* ------------------------------------------------------------------ *)
(* Reference kernel (the old Timing_sim hot path, public API only)     *)

let ref_longest_paths u ~roots ~restrict =
  let n = Unfolding.instance_count u in
  let time = Array.make n 0. in
  let pred_instance = Array.make n (-1) in
  let pred_arc = Array.make n (-1) in
  let is_root = Array.make n false in
  List.iter (fun v -> is_root.(v) <- true) roots;
  let topo = Unfolding.topological_order u in
  let starts, srcs, arc_ids = Unfolding.in_adjacency u in
  let delays = Unfolding.delays u in
  for k = 0 to Array.length topo - 1 do
    let v = topo.(k) in
    if restrict.(v) && not is_root.(v) then
      for j = starts.(v) to starts.(v + 1) - 1 do
        let src = srcs.(j) in
        if restrict.(src) then begin
          let d = time.(src) +. delays.(arc_ids.(j)) in
          if pred_instance.(v) < 0 || d > time.(v) then begin
            time.(v) <- d;
            pred_instance.(v) <- src;
            pred_arc.(v) <- arc_ids.(j)
          end
        end
      done
  done;
  (time, pred_instance, pred_arc, restrict)

let ref_reachable_from u at =
  let n = Unfolding.instance_count u in
  let starts, dsts, _ = Unfolding.out_adjacency u in
  let seen = Array.make n false in
  let stack = Array.make n 0 in
  let top = ref 0 in
  seen.(at) <- true;
  stack.(!top) <- at;
  incr top;
  while !top > 0 do
    decr top;
    let v = stack.(!top) in
    for j = starts.(v) to starts.(v + 1) - 1 do
      let w = dsts.(j) in
      if not seen.(w) then begin
        seen.(w) <- true;
        stack.(!top) <- w;
        incr top
      end
    done
  done;
  seen

let ref_simulate u =
  let restrict = Array.make (Unfolding.instance_count u) true in
  ref_longest_paths u ~roots:(Unfolding.initial_instances u) ~restrict

let ref_simulate_initiated u ~at =
  ref_longest_paths u ~roots:[ at ] ~restrict:(ref_reachable_from u at)

(* a reference analysis: the Cycle_time pipeline driven by the
   reference kernel.  Mirrors lib/core/cycle_time.ml — border, Delta
   samples, first-max selection, backtrack, cycle decomposition *)
let ref_analyze g =
  let border = Cut_set.border g in
  let periods = List.length border in
  let u = Unfolding.make g ~periods:(periods + 1) in
  let traces_and_sims =
    List.map
      (fun g0 ->
        let time, pi, pa, _ =
          ref_simulate_initiated u ~at:(Unfolding.instance u ~event:g0 ~period:0)
        in
        let samples =
          List.init periods (fun k ->
              let period = k + 1 in
              let t = time.(Unfolding.instance u ~event:g0 ~period) in
              {
                Cycle_time.period;
                time = t;
                average = t /. float_of_int period;
              })
        in
        ({ Cycle_time.border_event = g0; samples }, (time, pi, pa)))
      border
  in
  let traces = List.map fst traces_and_sims in
  let best =
    List.fold_left
      (fun acc (trace : Cycle_time.border_trace) ->
        List.fold_left
          (fun acc (s : Cycle_time.sample) ->
            match acc with
            | Some (_, _, best_avg) when best_avg >= s.Cycle_time.average -> acc
            | _ ->
              Some (trace.Cycle_time.border_event, s.Cycle_time.period, s.Cycle_time.average))
          acc trace.Cycle_time.samples)
      None traces
  in
  match best with
  | None -> Alcotest.fail "reference analysis collected no samples"
  | Some (critical_event, critical_period, cycle_time) ->
    let _, pi, pa =
      match
        List.find_opt
          (fun ((t : Cycle_time.border_trace), _) -> t.Cycle_time.border_event = critical_event)
          traces_and_sims
      with
      | Some (_, sim) -> sim
      | None -> assert false
    in
    let target = Unfolding.instance u ~event:critical_event ~period:critical_period in
    let rec back v acc =
      let acc = (if pi.(v) < 0 then None else Some pa.(v)) :: acc in
      if pi.(v) < 0 then acc else back pi.(v) acc
    in
    let critical_walk = List.filter_map Fun.id (back target []) in
    let decomposition = Cycles.decompose_closed_walk g critical_walk in
    let best_ratio =
      List.fold_left (fun acc c -> max acc (Cycles.effective_length c)) neg_infinity
        decomposition
    in
    let tolerance = 1e-9 in
    let critical_cycles =
      List.filter
        (fun c ->
          Cycles.effective_length c
          >= best_ratio -. (tolerance *. (1. +. abs_float best_ratio)))
        decomposition
    in
    {
      Cycle_time.cycle_time;
      critical_event;
      critical_period;
      critical_walk;
      critical_cycles;
      border;
      periods_simulated = periods;
      traces;
    }

(* ------------------------------------------------------------------ *)
(* Agreement properties                                                 *)

let check_same_result msg (time, pi, pa, reached) (r : Timing_sim.result) =
  Alcotest.(check (array (float 0.))) (msg ^ ": times") time r.Timing_sim.time;
  Alcotest.(check (array int)) (msg ^ ": pred instances") pi r.Timing_sim.pred_instance;
  Alcotest.(check (array int)) (msg ^ ": pred arcs") pa r.Timing_sim.pred_arc;
  Alcotest.(check (array bool)) (msg ^ ": reached") reached r.Timing_sim.reached

(* exact float equality: the kernels must agree bit for bit, not
   within a tolerance *)
let sims_agree g =
  let b = max 1 (List.length (Cut_set.border g)) in
  let u = Unfolding.make g ~periods:(b + 1) in
  check_same_result "full simulation" (ref_simulate u) (Timing_sim.simulate u);
  List.iter
    (fun g0 ->
      let at = Unfolding.instance u ~event:g0 ~period:0 in
      check_same_result
        (Printf.sprintf "initiated at instance %d" at)
        (ref_simulate_initiated u ~at)
        (Timing_sim.simulate_initiated u ~at))
    (Cut_set.border g);
  true

let reports_agree g =
  let reference = ref_analyze g in
  (* polymorphic equality covers every field exactly: lambda, critical
     event/period/walk, decomposed cycles, border, traces *)
  if Cycle_time.analyze g <> reference then
    Alcotest.fail "analysis report differs from the reference kernel's";
  true

let lambda_matches_baselines g =
  let lambda = Cycle_time.cycle_time g in
  Helpers.check_float "matches Karp" (Tsg_baselines.Karp.cycle_time g) lambda;
  Helpers.check_float "matches Howard" (Tsg_baselines.Howard.cycle_time g) lambda;
  true

let simulate_many_matches_initiated g =
  let b = max 1 (List.length (Cut_set.border g)) in
  let u = Unfolding.make g ~periods:(b + 1) in
  Unfolding.warm_caches u;
  let roots =
    Array.of_list
      (List.map (fun g0 -> Unfolding.instance u ~event:g0 ~period:0) (Cut_set.border g))
  in
  let n = Unfolding.instance_count u in
  List.iter
    (fun jobs ->
      let batched =
        Timing_sim.simulate_many ~jobs u ~roots ~f:(fun _ view ->
            ( Array.init n (Timing_sim.view_time view),
              Array.init n (Timing_sim.view_reached view) ))
      in
      Alcotest.(check int)
        (Printf.sprintf "one result per root at jobs %d" jobs)
        (Array.length roots) (Array.length batched);
      Array.iteri
        (fun i at ->
          let one = Timing_sim.simulate_initiated u ~at in
          let time, reached = batched.(i) in
          Alcotest.(check (array (float 0.)))
            (Printf.sprintf "times of root %d at jobs %d" at jobs)
            one.Timing_sim.time time;
          Alcotest.(check (array bool))
            (Printf.sprintf "reached of root %d at jobs %d" at jobs)
            one.Timing_sim.reached reached)
        roots)
    [ 1; 2; 4 ];
  true

(* the named models exercised by the CLI and the benchmarks *)
let test_library_models () =
  List.iter
    (fun g ->
      ignore (sims_agree g);
      ignore (reports_agree g))
    [
      Tsg_circuit.Circuit_library.fig1_tsg ();
      Tsg_circuit.Circuit_library.muller_ring_tsg ~stages:5 ();
      Tsg_circuit.Circuit_library.async_stack_tsg ();
    ]

let suite =
  [
    Alcotest.test_case "library models match the reference kernel" `Quick
      test_library_models;
    Helpers.qcheck_case ~name:"simulations match the reference kernel" sims_agree;
    Helpers.qcheck_structured_case ~name:"structured models match the reference kernel"
      sims_agree;
    Helpers.qcheck_case ~count:60 ~name:"reports match the reference pipeline"
      reports_agree;
    Helpers.qcheck_case ~name:"cycle time matches Karp and Howard"
      lambda_matches_baselines;
    Helpers.qcheck_case ~count:60 ~name:"simulate_many matches simulate_initiated"
      simulate_many_matches_initiated;
  ]
